open Anonmem
open Check

(* Symmetry-quotient exploration against the full-graph oracle.

   For every in-tree protocol: exploring with [~reduction:Canon] must give
   the same property verdicts as the full graph, the stored orbit sizes
   must partition the full reachable set exactly ([orbit_sum] equals the
   full state count), and the parallel explorer must reproduce the
   sequential quotient bit for bit. Asymmetric protocols must degrade to
   the identity group: their quotient IS the full graph.

   Also here: anonymity invariance (composing every naming with one fixed
   register permutation relabels the graph without changing anything
   observable) and exact-verdict parity of the memoized
   obstruction-freedom checker. *)

module Quot (P : Protocol.PROTOCOL) = struct
  module E = Explore.Make (P)
  module C = Canon.Make (P)

  (* Verdicts that are meaningful on a quotient graph: booleans and
     counts, never state indices (numbering differs across reductions). *)
  let verdicts (g : E.graph) =
    let fg = E.to_flat g in
    ( Option.is_some (Mutex_props.mutual_exclusion fg),
      Option.is_some (Mutex_props.deadlock_freedom fg),
      Option.is_some (Mutex_props.starvation_freedom fg),
      Option.is_some
        (Props.agreement
           ~equal:(fun a b -> Stdlib.compare a b = 0)
           ~statuses:E.statuses g.states),
      Option.is_some
        (Props.distinct_outputs
           ~equal:(fun a b -> Stdlib.compare a b = 0)
           ~statuses:E.statuses g.states),
      Option.is_some (E.check_obstruction_freedom g) )

  let group_order (cfg : E.config) =
    List.length
      (C.group ~ids:cfg.ids ~inputs:cfg.inputs ~namings:cfg.namings)

  (* [expect]: the automorphism group order this configuration must have.
     Order 1 means the quotient must be bit-identical to the full graph;
     order > 1 means it must be strictly smaller. *)
  let run ~expect (cfg : E.config) =
    let tag what = Printf.sprintf "%s: %s" P.name what in
    Alcotest.(check int) (tag "group order") expect (group_order cfg);
    let full, fstats = E.explore_with_stats cfg in
    let red, rstats = E.explore_with_stats ~reduction:Canon cfg in
    Alcotest.(check bool)
      (tag "full graph has unit orbits")
      true
      (Array.for_all (( = ) 1) full.orbits);
    Alcotest.(check int)
      (tag "full orbit_sum = states")
      (Array.length full.states)
      fstats.Checker_stats.orbit_sum;
    Alcotest.(check int)
      (tag "orbits partition the full reachable set")
      (Array.length full.states)
      rstats.Checker_stats.orbit_sum;
    Alcotest.(check int)
      (tag "orbit_sum = sum of stored orbits")
      rstats.Checker_stats.orbit_sum
      (Array.fold_left ( + ) 0 red.orbits);
    Alcotest.(check int)
      (tag "stats group order")
      expect rstats.Checker_stats.group_order;
    Alcotest.(check bool) (tag "stats canon flag") true rstats.Checker_stats.canon;
    Alcotest.(check bool)
      (tag "same verdicts on the quotient")
      true
      (verdicts full = verdicts red);
    if expect = 1 then begin
      Alcotest.(check bool)
        (tag "trivial group: quotient is the full graph")
        true
        (red.states = full.states && red.succs = full.succs
       && red.orbits = full.orbits && red.complete = full.complete)
    end
    else
      Alcotest.(check bool)
        (tag "non-trivial group: strictly fewer states")
        true
        (Array.length red.states < Array.length full.states);
    (* the parallel explorer must reproduce the sequential quotient
       bit-identically, both through the barrier phases (threshold 0) and
       through the adaptive sequential path (default threshold) *)
    List.iter
      (fun threshold ->
        let par, _ =
          E.explore_par ~domains:2 ?par_threshold:threshold ~reduction:Canon
            cfg
        in
        Alcotest.(check bool)
          (tag "par = seq on the quotient")
          true
          (red.states = par.states && red.succs = par.succs
         && red.orbits = par.orbits && red.complete = par.complete))
      [ None; Some 0 ]

  (* Composing every naming with one fixed register permutation [pi]
     relabels physical memory without changing anything a process can
     observe. Discovery order is deterministic and locals are untouched,
     so the full graphs must agree on everything except the (permuted)
     register contents — same numbering, same transitions, same statuses.
     The quotient graphs must agree on all counts and verdicts. *)
  let run_invariance (cfg : E.config) pi =
    let tag what = Printf.sprintf "%s (invariance): %s" P.name what in
    let cfg' =
      { cfg with namings = Array.map (fun nu -> Naming.compose pi nu) cfg.namings }
    in
    let full = E.explore cfg in
    let full' = E.explore cfg' in
    Alcotest.(check bool)
      (tag "full: same transitions")
      true
      (full.succs = full'.succs);
    Alcotest.(check bool)
      (tag "full: same statuses")
      true
      (Array.for_all2
         (fun a b -> E.statuses a = E.statuses b)
         full.states full'.states);
    Alcotest.(check bool)
      (tag "full: same locals")
      true
      (Array.for_all2
         (fun (a : E.state) (b : E.state) -> a.locals = b.locals)
         full.states full'.states);
    let red, rs = E.explore_with_stats ~reduction:Canon cfg in
    let red', rs' = E.explore_with_stats ~reduction:Canon cfg' in
    Alcotest.(check int)
      (tag "quotient: same size")
      (Array.length red.states)
      (Array.length red'.states);
    Alcotest.(check int)
      (tag "quotient: same group order")
      rs.Checker_stats.group_order rs'.Checker_stats.group_order;
    Alcotest.(check int)
      (tag "quotient: same orbit sum")
      rs.Checker_stats.orbit_sum rs'.Checker_stats.orbit_sum;
    Alcotest.(check bool)
      (tag "quotient: same orbit multiset")
      true
      (let sorted o =
         let o = Array.copy o in
         Array.sort compare o;
         o
       in
       sorted red.orbits = sorted red'.orbits);
    Alcotest.(check bool)
      (tag "quotient: same verdicts")
      true
      (verdicts red = verdicts red')

  (* The memoized obstruction-freedom check promises exact verdict parity
     with the plain per-state solo walk, including which (state, proc)
     pair fails first, at any bound. *)
  let run_of_memo ?(bounds = [ 0; 1; 3; 7; 50 ]) (cfg : E.config) =
    let g = E.explore cfg in
    List.iter
      (fun b ->
        let plain = E.check_obstruction_freedom ~bound:b ~memo:false g in
        let memo = E.check_obstruction_freedom ~bound:b ~memo:true g in
        Alcotest.(check bool)
          (Printf.sprintf "%s: OF memo parity at bound %d" P.name b)
          true (plain = memo))
      bounds;
    let plain = E.check_obstruction_freedom ~memo:false g in
    let memo = E.check_obstruction_freedom g in
    Alcotest.(check bool)
      (P.name ^ ": OF memo parity at default bound")
      true (plain = memo)
end

let pi3 = Naming.of_array [| 2; 0; 1 |]
let pi2 = Naming.of_array [| 1; 0 |]

(* random register permutations for the invariance tests, from a fixed
   seed so the suite stays deterministic *)
let random_pis m k =
  let rng = Rng.create 0x5EED in
  List.init k (fun _ -> Naming.random rng m)

(* --- anonymous mutex (Figure 1) --- *)

module QMutex = Quot (Coord.Amutex.P)

let amutex_sym n m =
  {
    QMutex.E.ids = Array.init n (fun i -> 7 + i);
    inputs = Array.make n ();
    namings = Array.init n (fun _ -> Naming.identity m);
  }

let test_amutex () =
  (* identical namings: the full symmetric group S_n *)
  QMutex.run ~expect:2 (amutex_sym 2 3);
  (* Theorem 3.4's lock-step tuple: n = m rotations form a cyclic group *)
  QMutex.run ~expect:3
    {
      QMutex.E.ids = [| 7; 8; 9 |];
      inputs = [| (); (); () |];
      namings = Array.init 3 (fun q -> Naming.rotation 3 q);
    };
  (* generic distinct namings: only the identity survives *)
  QMutex.run ~expect:1
    {
      QMutex.E.ids = [| 7; 13 |];
      inputs = [| (); () |];
      namings = [| Naming.identity 3; Naming.rotation 3 1 |];
    }

let test_amutex_invariance () =
  List.iter
    (fun pi ->
      QMutex.run_invariance (amutex_sym 2 3) pi;
      QMutex.run_invariance
        {
          QMutex.E.ids = [| 7; 13 |];
          inputs = [| (); () |];
          namings = [| Naming.identity 3; Naming.rotation 3 1 |];
        }
        pi)
    (pi3 :: random_pis 3 3)

(* --- comparison-based mutex: order-sensitive, must not reduce --- *)

module QCmp = Quot (Coord.Cmp_mutex.P)

let test_cmp_mutex () =
  QCmp.run ~expect:1
    {
      QCmp.E.ids = [| 7; 13 |];
      inputs = [| (); () |];
      namings = [| Naming.identity 2; Naming.identity 2 |];
    }

(* --- consensus / election --- *)

module QCons = Quot (Coord.Consensus.P)

let test_consensus () =
  (* equal inputs: processes are interchangeable *)
  QCons.run ~expect:2
    {
      QCons.E.ids = [| 7; 13 |];
      inputs = [| 42; 42 |];
      namings = [| Naming.identity 3; Naming.identity 3 |];
    };
  (* distinct inputs break the symmetry *)
  QCons.run ~expect:1
    {
      QCons.E.ids = [| 7; 13 |];
      inputs = [| 100; 200 |];
      namings = [| Naming.identity 3; Naming.identity 3 |];
    }

module QElect = Quot (Coord.Election.P)

let test_election () =
  QElect.run ~expect:2
    {
      QElect.E.ids = [| 7; 13 |];
      inputs = [| (); () |];
      namings = [| Naming.identity 3; Naming.identity 3 |];
    }

(* --- renaming --- *)

module QRen = Quot (Coord.Renaming.P)

let test_renaming () =
  QRen.run ~expect:2
    {
      QRen.E.ids = [| 7; 13 |];
      inputs = [| (); () |];
      namings = [| Naming.identity 3; Naming.identity 3 |];
    }

let test_renaming_invariance () =
  List.iter
    (fun pi ->
      QRen.run_invariance
        {
          QRen.E.ids = [| 7; 13 |];
          inputs = [| (); () |];
          namings = [| Naming.identity 3; Naming.identity 3 |];
        }
        pi)
    (random_pis 3 2)

(* --- choice coordination --- *)

module QCcp = Quot (Coord.Ccp.P)

let ccp_cfg namings = { QCcp.E.ids = [| 7; 13 |]; inputs = [| (); () |]; namings }

let test_ccp () =
  QCcp.run ~expect:2
    (ccp_cfg [| Naming.identity 2; Naming.identity 2 |]);
  (* on two registers the 1-rotation is an involution, so the swapped
     naming pair maps onto itself under the process swap: still order 2 *)
  QCcp.run ~expect:2
    (ccp_cfg [| Naming.identity 2; Naming.rotation 2 1 |]);
  List.iter (fun pi -> QCcp.run_invariance (ccp_cfg [| Naming.identity 2; Naming.identity 2 |]) pi)
    [ pi2 ]

module QCcpK = Quot (Coord.Ccp_k.P3)

let test_ccp_k () =
  QCcpK.run ~expect:2
    {
      QCcpK.E.ids = [| 7; 13 |];
      inputs = [| (); () |];
      namings = [| Naming.identity 3; Naming.identity 3 |];
    };
  (* on three registers a 1-rotation is not an involution: swapping the
     processes cannot map the naming tuple onto itself *)
  QCcpK.run ~expect:1
    {
      QCcpK.E.ids = [| 7; 13 |];
      inputs = [| (); () |];
      namings = [| Naming.identity 3; Naming.rotation 3 1 |];
    }

(* --- named baselines: asymmetric by construction --- *)

module QPet = Quot (Baseline.Peterson.P)

let test_peterson () =
  QPet.run ~expect:1 (QPet.E.config ~ids:[ 1; 2 ] ~inputs:[ (); () ] ())

module QBurns = Quot (Baseline.Burns.P)

let test_burns () =
  QBurns.run ~expect:1
    (QBurns.E.config ~ids:[ 1; 2; 3 ] ~inputs:[ (); (); () ] ())

(* --- property: canonical representatives across discovery orders ---

   On Gen-drawn instances (seeded, boundary-biased), the quotient's
   stored representatives must be fixed points of the reference
   materialize-and-sort canonizer with matching orbit sizes (old path =
   new incremental path), identical across seq and par explorers at
   domains 1/2/4 on both scheduling paths, identical across a
   snapshot/resume boundary, and the incremental ctx must agree with the
   reference on every raw orbit element — not just the canonical ones
   the explorer happens to store. *)

module CdMutex = Codec.Make (Coord.Amutex.P)

let test_gen_canonical_invariance () =
  let rng = Rng.create 0xCA70 in
  for _ = 1 to 4 do
    let p = Gen.params ~profile:Gen.smoke_profile rng in
    let cfg =
      {
        QMutex.E.ids = p.Gen.ids;
        inputs = Array.make p.Gen.n ();
        namings = Array.map Naming.of_array p.Gen.namings;
      }
    in
    let tag what =
      Printf.sprintf "gen n=%d m=%d ids=[%s]: %s" p.Gen.n p.Gen.m
        (String.concat ";"
           (Array.to_list (Array.map string_of_int p.Gen.ids)))
        what
    in
    let syms =
      QMutex.C.group ~ids:cfg.ids ~inputs:cfg.inputs ~namings:cfg.namings
    in
    let red, rstats = QMutex.E.explore_with_stats ~reduction:Canon cfg in
    let fixed = ref true and orbits_ok = ref true in
    Array.iteri
      (fun i (st : QMutex.E.state) ->
        let mem, locals, orbit = QMutex.C.canonize syms st.mem st.locals in
        if not (mem = st.mem && locals = st.locals) then fixed := false;
        if orbit <> red.orbits.(i) then orbits_ok := false)
      red.states;
    Alcotest.(check bool)
      (tag "stored reps are reference fixed points")
      true !fixed;
    Alcotest.(check bool)
      (tag "stored orbits match the reference")
      true !orbits_ok;
    (* direct old-vs-new on raw states: a private incremental ctx must
       agree with the reference canonizer on every orbit element *)
    (match syms with
    | [] | [ _ ] -> ()
    | _ ->
      let codec = CdMutex.create () in
      let init = QMutex.E.initial cfg in
      let ctx =
        QMutex.C.make_ctx ~syms
          ~value_code:(CdMutex.value_code codec)
          ~local_code:(CdMutex.local_code codec)
          ~pack:(CdMutex.key_of_codes codec)
          ~init:(init.mem, init.locals)
      in
      let agree = ref true in
      Array.iter
        (fun (st : QMutex.E.state) ->
          List.iter
            (fun sym ->
              let rmem, rloc = QMutex.C.apply sym st.mem st.locals in
              let cmem, cloc, corb = QMutex.C.canonize syms rmem rloc in
              let raw = QMutex.C.state_key ctx rmem rloc in
              let imem, iloc, _key, iorb =
                QMutex.C.canonize_keyed ctx ~raw rmem rloc
              in
              if not (imem = cmem && iloc = cloc && iorb = corb) then
                agree := false)
            syms)
        red.states;
      Alcotest.(check bool)
        (tag "incremental = reference on every orbit element")
        true !agree);
    (* identical quotient across domain counts, through both the barrier
       phases (threshold 0) and the adaptive sequential path *)
    List.iter
      (fun d ->
        List.iter
          (fun threshold ->
            let par, _ =
              QMutex.E.explore_par ~domains:d ?par_threshold:threshold
                ~reduction:Canon cfg
            in
            Alcotest.(check bool)
              (tag (Printf.sprintf "par(%d domains) = seq quotient" d))
              true
              (par.states = red.states && par.succs = red.succs
             && par.orbits = red.orbits && par.complete = red.complete))
          [ None; Some 0 ])
      [ 1; 2; 4 ];
    (* the representative choice survives a snapshot/resume boundary *)
    let snap = Filename.temp_file "canon-gen" ".snap" in
    let budget = max 2 (Array.length red.states / 2) in
    let trunc, _ =
      QMutex.E.explore_with_stats ~reduction:Canon ~max_states:budget
        ~snapshot_to:snap cfg
    in
    Alcotest.(check bool) (tag "budget truncated") false trunc.complete;
    let res, res_stats =
      QMutex.E.explore_with_stats ~reduction:Canon ~resume_from:snap cfg
    in
    Sys.remove snap;
    Alcotest.(check bool)
      (tag "resumed quotient = uninterrupted quotient")
      true
      (res.states = red.states && res.succs = red.succs
     && res.orbits = red.orbits && res.complete = red.complete);
    Alcotest.(check bool)
      (tag "resumed stats = uninterrupted stats")
      true
      (Checker_stats.equal_ignoring_time res_stats rstats)
  done

(* --- obstruction-freedom memoization parity --- *)

let test_of_memo () =
  QMutex.run_of_memo (amutex_sym 2 3);
  QCons.run_of_memo
    {
      QCons.E.ids = [| 7; 13 |];
      inputs = [| 100; 200 |];
      namings = [| Naming.identity 3; Naming.rotation 3 1 |];
    };
  QRen.run_of_memo
    {
      QRen.E.ids = [| 7; 13 |];
      inputs = [| (); () |];
      namings = [| Naming.identity 3; Naming.identity 3 |];
    };
  QCcp.run_of_memo (ccp_cfg [| Naming.identity 2; Naming.rotation 2 1 |])

let suite =
  [
    Alcotest.test_case "quotient: anonymous mutex" `Quick test_amutex;
    Alcotest.test_case "quotient: cmp mutex stays full" `Quick test_cmp_mutex;
    Alcotest.test_case "quotient: consensus" `Quick test_consensus;
    Alcotest.test_case "quotient: election" `Quick test_election;
    Alcotest.test_case "quotient: renaming" `Quick test_renaming;
    Alcotest.test_case "quotient: ccp" `Quick test_ccp;
    Alcotest.test_case "quotient: ccp-k" `Quick test_ccp_k;
    Alcotest.test_case "quotient: peterson stays full" `Quick test_peterson;
    Alcotest.test_case "quotient: burns stays full" `Quick test_burns;
    Alcotest.test_case "anonymity invariance: amutex" `Quick
      test_amutex_invariance;
    Alcotest.test_case "anonymity invariance: renaming" `Quick
      test_renaming_invariance;
    Alcotest.test_case "canonical invariance on random instances" `Quick
      test_gen_canonical_invariance;
    Alcotest.test_case "obstruction-freedom memo parity" `Quick test_of_memo;
  ]
