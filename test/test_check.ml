open Anonmem
open Check

(* Scc and Dot have their own suites now (test_scc.ml, test_dot.ml). *)

(* --- Mutex_props on hand-built flat graphs --- *)

let flat ~n_procs ~statuses ~edges =
  let n = Array.length statuses in
  let succs = Array.make n [] in
  List.iter
    (fun (src, t) -> succs.(src) <- t :: succs.(src))
    edges;
  { Check.Flatgraph.n_procs; statuses; succs; complete = true }

let tr dst proc enters_cs = { Check.Flatgraph.dst; proc; enters_cs }

let test_me_detects () =
  let g =
    flat ~n_procs:2
      ~statuses:[| [| Flatgraph.Try; Try |]; [| Crit; Crit |] |]
      ~edges:[ (0, tr 1 0 true) ]
  in
  match Check.Mutex_props.mutual_exclusion g with
  | Some v -> Alcotest.(check int) "violating state" 1 v.state
  | None -> Alcotest.fail "should detect double critical"

let test_me_ok () =
  let g =
    flat ~n_procs:2
      ~statuses:[| [| Flatgraph.Crit; Try |]; [| Rem; Crit |] |]
      ~edges:[]
  in
  Alcotest.(check bool) "no violation" true
    (Check.Mutex_props.mutual_exclusion g = None)

let test_df_detects_fair_cycle () =
  (* Two states, both processes trying, both stepping, no CS entry. *)
  let g =
    flat ~n_procs:2
      ~statuses:[| [| Flatgraph.Try; Try |]; [| Try; Try |] |]
      ~edges:[ (0, tr 1 0 false); (1, tr 0 1 false) ]
  in
  match Check.Mutex_props.deadlock_freedom g with
  | Some v ->
    Alcotest.(check (list int)) "both trying forever" [ 0; 1 ] v.trying
  | None -> Alcotest.fail "should detect livelock"

let test_df_ignores_unfair_cycle () =
  (* Process 1 is trying inside the cycle but never steps in it: the cycle
     starves process 1, which is an illegal run, not a deadlock. *)
  let g =
    flat ~n_procs:2
      ~statuses:[| [| Flatgraph.Try; Try |]; [| Try; Try |] |]
      ~edges:[ (0, tr 1 0 false); (1, tr 0 0 false) ]
  in
  Alcotest.(check bool) "unfair cycle not reported" true
    (Check.Mutex_props.deadlock_freedom g = None)

let test_df_ignores_progress_cycle () =
  (* A cycle that keeps entering the critical section is progress. *)
  let g =
    flat ~n_procs:1
      ~statuses:[| [| Flatgraph.Try |]; [| Crit |] |]
      ~edges:[ (0, tr 1 0 true); (1, tr 0 0 false) ]
  in
  Alcotest.(check bool) "progress cycle ok" true
    (Check.Mutex_props.deadlock_freedom g = None)

let test_df_ignores_remainder_cycle () =
  (* Everyone idles in the remainder: nobody is trying, no obligation. *)
  let g =
    flat ~n_procs:1
      ~statuses:[| [| Flatgraph.Rem |] |]
      ~edges:[ (0, tr 0 0 false) ]
  in
  Alcotest.(check bool) "remainder churn ok" true
    (Check.Mutex_props.deadlock_freedom g = None)

let test_df_refinement () =
  (* An SCC that is only bad because of a state where a third party is
     active but never steps; refinement removes it and finds the real
     subcycle 1<->2. *)
  let g =
    flat ~n_procs:2
      ~statuses:
        [|
          [| Flatgraph.Try; Try |] (* p1 active here but steps nowhere *);
          [| Try; Rem |];
          [| Try; Rem |];
        |]
      ~edges:
        [
          (0, tr 1 0 false);
          (1, tr 2 0 false);
          (2, tr 1 0 false);
          (2, tr 0 0 false);
        ]
  in
  match Check.Mutex_props.deadlock_freedom g with
  | Some v ->
    Alcotest.(check (list int)) "only p0 starves" [ 0 ] v.trying;
    Alcotest.(check bool) "cycle excludes state 0" true
      (not (List.mem 0 v.states))
  | None -> Alcotest.fail "refined cycle should be found"

(* --- Explore on the toy protocol --- *)

module Toy = Test_runtime.Toy
module E = Check.Explore.Make (Toy)

let test_explore_toy () =
  let cfg = E.config ~ids:[ 5; 9 ] ~inputs:[ (); () ] () in
  let g = E.explore cfg in
  Alcotest.(check bool) "complete" true g.complete;
  (* toy: each process has 4 local states; interleavings are bounded *)
  Alcotest.(check bool) "small but nontrivial" true
    (Array.length g.states > 10 && Array.length g.states < 200);
  (* initial state is state 0 with both in remainder *)
  let sts = E.statuses g.states.(0) in
  Alcotest.(check bool) "initial remainder" true
    (Array.for_all (fun s -> s = Protocol.Remainder) sts)

let test_explore_budget () =
  let cfg = E.config ~ids:[ 5; 9 ] ~inputs:[ (); () ] () in
  let g = E.explore ~max_states:5 cfg in
  Alcotest.(check bool) "truncated" true (not g.complete);
  Alcotest.(check int) "capped" 5 (Array.length g.states)

let test_explore_decisions () =
  (* in every terminal state both toys decided on some id *)
  let cfg = E.config ~ids:[ 5; 9 ] ~inputs:[ (); () ] () in
  let g = E.explore cfg in
  Array.iteri
    (fun sid st ->
      if g.succs.(sid) = [] then
        Array.iter
          (fun s ->
            match s with
            | Protocol.Decided v ->
              Alcotest.(check bool) "decided an id" true (v = 5 || v = 9)
            | _ -> Alcotest.fail "terminal state must be decided")
          (E.statuses st))
    g.states

let test_solo_run_toy () =
  let cfg = E.config ~ids:[ 5; 9 ] ~inputs:[ (); () ] () in
  match E.solo_run cfg (E.initial cfg) ~proc:1 ~max_steps:10 with
  | `Decided v -> Alcotest.(check int) "solo toy decides own id" 9 v
  | _ -> Alcotest.fail "toy must decide solo"

let test_of_check_toy () =
  let cfg = E.config ~ids:[ 5; 9 ] ~inputs:[ (); () ] () in
  let g = E.explore cfg in
  Alcotest.(check bool) "toy is obstruction-free" true
    (E.check_obstruction_freedom g = None)

let suite =
  [
    Alcotest.test_case "mutex: detects double critical" `Quick test_me_detects;
    Alcotest.test_case "mutex: accepts exclusive" `Quick test_me_ok;
    Alcotest.test_case "df: detects fair livelock" `Quick
      test_df_detects_fair_cycle;
    Alcotest.test_case "df: ignores unfair cycle" `Quick
      test_df_ignores_unfair_cycle;
    Alcotest.test_case "df: ignores progress cycle" `Quick
      test_df_ignores_progress_cycle;
    Alcotest.test_case "df: ignores remainder churn" `Quick
      test_df_ignores_remainder_cycle;
    Alcotest.test_case "df: fairness refinement" `Quick test_df_refinement;
    Alcotest.test_case "explore: toy graph" `Quick test_explore_toy;
    Alcotest.test_case "explore: budget truncation" `Quick test_explore_budget;
    Alcotest.test_case "explore: terminal decisions" `Quick
      test_explore_decisions;
    Alcotest.test_case "explore: solo run" `Quick test_solo_run_toy;
    Alcotest.test_case "explore: obstruction freedom" `Quick test_of_check_toy;
  ]

(* --- Hunt: randomized violation search --- *)

module HuntWin = Check.Hunt.Make (Test_wrap.Fig1_3)
module HuntFig1 = Check.Hunt.Make (Coord.Amutex.P)

let test_hunt_finds_window_violation () =
  (* misaligned ignore-windows (E15) break mutual exclusion in a way random
     schedules expose quickly *)
  let o, trace =
    HuntWin.hunt ~violation:HuntWin.mutex_violation ~ids:[ 7; 13 ]
      ~inputs:[ (); () ] ~m:5 ()
  in
  Alcotest.(check bool) "witness found" true (o.Check.Hunt.witness_seed <> None);
  match trace with
  | Some t ->
    Alcotest.(check bool) "trace ends with both critical" true
      (List.exists Trace.enters_critical t)
  | None -> Alcotest.fail "expected a witness trace"

let test_hunt_clean_on_verified_instance () =
  let o, trace =
    HuntFig1.hunt ~attempts:150 ~violation:HuntFig1.mutex_violation
      ~ids:[ 7; 13 ] ~inputs:[ (); () ] ~m:3 ()
  in
  Alcotest.(check bool) "no witness on the verified instance" true
    (o.Check.Hunt.witness_seed = None && trace = None);
  Alcotest.(check int) "all attempts used" 150 o.Check.Hunt.attempts_made

let test_hunt_deterministic () =
  let run () =
    fst
      (HuntWin.hunt ~violation:HuntWin.mutex_violation ~ids:[ 7; 13 ]
         ~inputs:[ (); () ] ~m:5 ())
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same witness seed both times" true
    (a.Check.Hunt.witness_seed = b.Check.Hunt.witness_seed)

let hunt_suite =
  [
    Alcotest.test_case "hunt finds window ME violation" `Quick
      test_hunt_finds_window_violation;
    Alcotest.test_case "hunt clean on verified instance" `Quick
      test_hunt_clean_on_verified_instance;
    Alcotest.test_case "hunt is deterministic" `Quick test_hunt_deterministic;
  ]

let suite = suite @ hunt_suite

(* hunt's disagreement predicate, on consensus misused with one register *)
module HuntCons = Check.Hunt.Make (Test_wrap.Pinned)

let test_hunt_disagreement () =
  (* Fix_n(2) consensus given m=1 register and 3 processes: covering-free
     disagreement is actually reachable by plain schedules here *)
  let o, _ =
    HuntCons.hunt ~attempts:500
      ~violation:(HuntCons.disagreement ~equal:Int.equal)
      ~ids:[ 5; 9; 13 ] ~inputs:[ 100; 200; 300 ] ~m:1 ()
  in
  Alcotest.(check bool) "disagreement witness found" true
    (o.Check.Hunt.witness_seed <> None)

let suite =
  suite
  @ [
      Alcotest.test_case "hunt finds consensus disagreement" `Quick
        test_hunt_disagreement;
    ]
