(* Codec interning: dump/of_dump must restore codes exactly, so a resumed
   exploration re-encodes every state to the same key bytes. Exercised on
   adversarial interleavings of value and local interning. *)

module C = Check.Codec.Make (Test_runtime.Toy)

let test_encode_length () =
  let c = C.create () in
  let mem = [| 0; 7; 3 |] in
  let locals = Test_runtime.Toy.[| Rem; Put |] in
  Alcotest.(check int) "3 bytes per slot"
    (3 * (3 + 2))
    (String.length (C.encode c mem locals))

let test_interning_is_stable () =
  let c = C.create () in
  let a = C.value_code c 41 in
  let b = C.value_code c 17 in
  Alcotest.(check bool) "distinct values, distinct codes" true (a <> b);
  Alcotest.(check int) "re-interning 41 returns same code" a
    (C.value_code c 41);
  Alcotest.(check int) "re-interning 17 returns same code" b
    (C.value_code c 17);
  Alcotest.(check int) "two values interned" 2 (C.n_values c)

let test_equal_states_equal_keys () =
  let c = C.create () in
  let k1 = C.encode c [| 1; 2 |] Test_runtime.Toy.[| Put; Get |] in
  (* intern unrelated junk in between *)
  ignore (C.value_code c 99);
  ignore (C.local_code c (Test_runtime.Toy.Fin 5));
  let k2 = C.encode c [| 1; 2 |] Test_runtime.Toy.[| Put; Get |] in
  let k3 = C.encode c [| 2; 1 |] Test_runtime.Toy.[| Put; Get |] in
  Alcotest.(check string) "same state, same key" k1 k2;
  Alcotest.(check bool) "different state, different key" true (k1 <> k3)

let test_dump_restores_codes () =
  let c = C.create () in
  (* adversarial interleaving: values and locals interned alternately,
     including a re-intern that must not bump counters *)
  let vals = [ 13; 0; -5; 13; 1000; 7 ] in
  let locs =
    Test_runtime.Toy.[ Get; Fin 0; Rem; Fin (-3); Get; Put ]
  in
  List.iter2
    (fun v l ->
      ignore (C.value_code c v);
      ignore (C.local_code c l))
    vals locs;
  let key_before =
    C.encode c [| 13; -5; 1000 |] Test_runtime.Toy.[| Fin 0; Put |]
  in
  let c' = C.of_dump (C.dump c) in
  Alcotest.(check int) "values restored" (C.n_values c) (C.n_values c');
  Alcotest.(check int) "locals restored" (C.n_locals c) (C.n_locals c');
  List.iter
    (fun v ->
      Alcotest.(check int)
        (Printf.sprintf "code of value %d preserved" v)
        (C.value_code c v) (C.value_code c' v))
    vals;
  List.iter
    (fun l ->
      Alcotest.(check int) "code of local preserved" (C.local_code c l)
        (C.local_code c' l))
    locs;
  Alcotest.(check string) "state key byte-identical after restore" key_before
    (C.encode c' [| 13; -5; 1000 |] Test_runtime.Toy.[| Fin 0; Put |])

let test_dump_of_empty () =
  let c' = C.of_dump (C.dump (C.create ())) in
  Alcotest.(check int) "no values" 0 (C.n_values c');
  Alcotest.(check int) "no locals" 0 (C.n_locals c');
  ignore (C.encode c' [| 4 |] [| Test_runtime.Toy.Rem |]);
  Alcotest.(check int) "fresh interning works" 2 (C.n_values c' + C.n_locals c')

let test_extension_after_restore () =
  let c = C.create () in
  ignore (C.value_code c 1);
  ignore (C.value_code c 2);
  let c' = C.of_dump (C.dump c) in
  let fresh = C.value_code c' 3 in
  Alcotest.(check bool) "fresh code extends old range" true
    (fresh <> C.value_code c' 1 && fresh <> C.value_code c' 2);
  Alcotest.(check int) "count extends" 3 (C.n_values c');
  (* the donor context is untouched *)
  Alcotest.(check int) "donor unchanged" 2 (C.n_values c)

let test_encode_solo_distinguishes_proc () =
  let c = C.create () in
  let mem = [| 0; 0 |] in
  let k0 = C.encode_solo c ~proc:0 Test_runtime.Toy.Put mem in
  let k1 = C.encode_solo c ~proc:1 Test_runtime.Toy.Put mem in
  Alcotest.(check bool) "same local+mem, different proc, different key" true
    (k0 <> k1);
  Alcotest.(check string) "solo key deterministic" k0
    (C.encode_solo c ~proc:0 Test_runtime.Toy.Put mem)

(* --- key-width overflow: typed error, 4-byte widening ------------------
   A code that does not fit the key width must raise the typed
   [Codec.Overflow] instead of silently truncating (which would alias two
   distinct states — a missed violation). [key_of_codes] packs
   already-interned codes, so it can exercise the boundary directly
   without interning 2^24 values. *)

let test_overflow_typed () =
  let c = C.create () in
  Alcotest.(check int) "default width" 3 (C.width c);
  (* largest representable code packs fine *)
  ignore (C.key_of_codes c [| (1 lsl 24) - 1 |] [| 0 |]);
  (match C.key_of_codes c [| 1 lsl 24 |] [| 0 |] with
  | exception Check.Codec.Overflow { kind = "value"; code; width = 3 } ->
    Alcotest.(check int) "overflowing code reported" (1 lsl 24) code
  | exception e ->
    Alcotest.failf "expected typed Overflow, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "24-bit overflow not detected");
  (match C.key_of_codes c [| 0 |] [| 1 lsl 24 |] with
  | exception Check.Codec.Overflow { kind = "local"; _ } -> ()
  | exception e ->
    Alcotest.failf "expected local Overflow, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "local-slot overflow not detected");
  (* the registered printer names the recovery *)
  let msg =
    Printexc.to_string
      (Check.Codec.Overflow { kind = "value"; code = 1 lsl 24; width = 3 })
  in
  let contains needle =
    let nl = String.length needle and sl = String.length msg in
    let rec go i = i + nl <= sl && (String.sub msg i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "printer suggests wide keys" true
    (contains "wide keys")

let test_wide_widening () =
  let c = C.create ~wide:true () in
  Alcotest.(check int) "wide width" 4 (C.width c);
  Alcotest.(check int) "4 bytes per slot"
    (4 * (3 + 2))
    (String.length (C.encode c [| 0; 7; 3 |] Test_runtime.Toy.[| Rem; Put |]));
  (* the code that overflowed 3-byte keys fits wide ones *)
  ignore (C.key_of_codes c [| 1 lsl 24 |] [| 0 |]);
  (* ... and wide keys still have a boundary of their own *)
  (match C.key_of_codes c [| 1 lsl 32 |] [| 0 |] with
  | exception Check.Codec.Overflow { width = 4; _ } -> ()
  | exception e ->
    Alcotest.failf "expected wide Overflow, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "32-bit overflow not detected");
  (* width survives dump/of_dump, so a resumed run re-packs identically *)
  ignore (C.value_code c 42);
  let c' = C.of_dump (C.dump c) in
  Alcotest.(check int) "width restored from dump" 4 (C.width c');
  Alcotest.(check string) "wide key byte-identical after restore"
    (C.encode c [| 42 |] [| Test_runtime.Toy.Rem |])
    (C.encode c' [| 42 |] [| Test_runtime.Toy.Rem |])

let suite =
  [
    Alcotest.test_case "encode length" `Quick test_encode_length;
    Alcotest.test_case "overflow is a typed error" `Quick test_overflow_typed;
    Alcotest.test_case "wide keys widen the boundary" `Quick
      test_wide_widening;
    Alcotest.test_case "interning stable" `Quick test_interning_is_stable;
    Alcotest.test_case "equal states, equal keys" `Quick
      test_equal_states_equal_keys;
    Alcotest.test_case "dump/of_dump preserves codes" `Quick
      test_dump_restores_codes;
    Alcotest.test_case "dump of empty context" `Quick test_dump_of_empty;
    Alcotest.test_case "interning extends after restore" `Quick
      test_extension_after_restore;
    Alcotest.test_case "encode_solo keyed by process" `Quick
      test_encode_solo_distinguishes_proc;
  ]
