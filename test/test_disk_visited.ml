open Check

(* External-memory exploration: the disk-backed visited set must be an
   invisible implementation detail. Whatever mix of hot table and sorted
   runs the watermark produced, the statistics are bit-identical (mod
   clock and infrastructure weather) to the in-RAM reference explorer —
   complete, budget-truncated, interrupted, resumed, or salvaged. *)

module P = Coord.Amutex.P
module E = Explore.Make (P)

let cfg () = E.config ~m:3 ~ids:[ 7; 13 ] ~inputs:[ (); () ] ()

let tmp_dir name =
  let f = Filename.temp_file ("coorddv-" ^ name) ".d" in
  Sys.remove f;
  f

let tmp_snap name = Filename.temp_file ("coorddv-" ^ name) ".snap"

let check_stats tag a b =
  Alcotest.(check bool)
    (tag ^ ": stats bit-identical (mod clock)")
    true
    (Checker_stats.equal_ignoring_time a b)

(* in-RAM oracle of the standard configuration, computed once *)
let oracle = lazy (snd (E.explore_with_stats (cfg ())))

(* ------------------- Disk_visited, in isolation ---------------------- *)

let fp = Digest.string "disk-visited-unit"
let descr = "unit test"

let test_store_roundtrip () =
  let dir = tmp_dir "unit" in
  let dv = Disk_visited.create ~dir ~key_len:3 () in
  Disk_visited.spill dv ~fingerprint:fp ~descr [| "aaa"; "bbb"; "ccc" |];
  Disk_visited.spill dv ~fingerprint:fp ~descr [| "abc"; "zzz" |];
  Alcotest.(check int) "two runs" 2 (Disk_visited.n_runs dv);
  Alcotest.(check int) "five keys" 5 (Disk_visited.n_keys dv);
  Alcotest.(check (array bool))
    "batched membership"
    [| true; true; false; true |]
    (Disk_visited.probe dv [| "aaa"; "abc"; "bbc"; "zzz" |]);
  Alcotest.(check int) "one batched probe" 1 (Disk_visited.n_probes dv);
  (* restore re-validates every run and reopens the same set *)
  let m = Disk_visited.manifest dv in
  let dv' = Disk_visited.restore ~dir ~fingerprint:fp ~descr m in
  Alcotest.(check (array bool))
    "membership after restore"
    [| true; false; true |]
    (Disk_visited.probe dv' [| "ccc"; "xxx"; "zzz" |])

let test_restore_deletes_strays () =
  let dir = tmp_dir "stray" in
  let dv = Disk_visited.create ~dir ~key_len:3 () in
  Disk_visited.spill dv ~fingerprint:fp ~descr [| "aaa"; "bbb" |];
  let m1 = Disk_visited.manifest dv in
  Disk_visited.spill dv ~fingerprint:fp ~descr [| "zzz" |];
  (* rolling back to the one-run manifest must delete the newer run:
     probing it would wrongly suppress states the frontier must reach *)
  let dv' = Disk_visited.restore ~dir ~fingerprint:fp ~descr m1 in
  Alcotest.(check int) "one run again" 1 (Disk_visited.n_runs dv');
  Alcotest.(check (array bool))
    "abandoned key forgotten" [| false |]
    (Disk_visited.probe dv' [| "zzz" |]);
  Alcotest.(check bool) "stray run file deleted" false
    (Sys.file_exists (Filename.concat dir "run-0001.run"))

let test_restore_refuses_damage () =
  let dir = tmp_dir "damage" in
  let dv = Disk_visited.create ~dir ~key_len:3 () in
  Disk_visited.spill dv ~fingerprint:fp ~descr [| "aaa"; "bbb"; "ccc" |];
  let m = Disk_visited.manifest dv in
  let path = Filename.concat dir "run-0000.run" in
  let sz = (Unix.stat path).Unix.st_size in
  Unix.truncate path (sz / 2);
  (match Disk_visited.restore ~dir ~fingerprint:fp ~descr m with
  | _ -> Alcotest.fail "restore accepted a truncated run"
  | exception Snapshot.Error _ -> ());
  (* a fingerprint mismatch is refused before any byte is trusted *)
  let dir2 = tmp_dir "fpmism" in
  let dv2 = Disk_visited.create ~dir:dir2 ~key_len:3 () in
  Disk_visited.spill dv2 ~fingerprint:fp ~descr [| "aaa" |];
  match
    Disk_visited.restore ~dir:dir2
      ~fingerprint:(Digest.string "other exploration")
      ~descr (Disk_visited.manifest dv2)
  with
  | _ -> Alcotest.fail "restore accepted a foreign fingerprint"
  | exception Snapshot.Error (Snapshot.Config_mismatch _) -> ()

(* A spill that died between tmp file and rename leaves run-*.tmp debris
   no manifest references; create and restore both sweep it. *)
let test_tmp_debris_swept () =
  let dir = tmp_dir "tmpdebris" in
  let dv = Disk_visited.create ~dir ~key_len:3 () in
  Disk_visited.spill dv ~fingerprint:fp ~descr [| "aaa"; "bbb" |];
  let m = Disk_visited.manifest dv in
  let plant name =
    let oc = open_out_bin (Filename.concat dir name) in
    output_string oc "torn spill debris";
    close_out oc
  in
  plant "run-0007.run.tmp";
  plant "run-0001.run.tmp";
  let dv' = Disk_visited.restore ~dir ~fingerprint:fp ~descr m in
  Alcotest.(check bool) "restore swept the tmp debris" false
    (Sys.file_exists (Filename.concat dir "run-0007.run.tmp")
    || Sys.file_exists (Filename.concat dir "run-0001.run.tmp"));
  Alcotest.(check int) "manifest runs untouched" 1 (Disk_visited.n_runs dv');
  plant "run-0002.run.tmp";
  let _ = Disk_visited.create ~dir ~key_len:3 () in
  Alcotest.(check bool) "create swept the tmp debris" false
    (Sys.file_exists (Filename.concat dir "run-0002.run.tmp"))

(* Probes trust run payloads without re-hashing, so a spill damaged in
   flight must be caught by the read-back at write time — the
   alternative is an exhaustive checker that silently answers "not
   visited" for a visited state. *)
let test_spill_verifies_after_write () =
  let dir = tmp_dir "flip" in
  let dv = Disk_visited.create ~dir ~key_len:3 () in
  Resilience.arm
    {
      Resilience.seed = 0;
      faults = [ Resilience.Flip_byte { nth_write = 1; at = 0.9 } ];
    };
  Fun.protect ~finally:Resilience.disarm (fun () ->
      (match Disk_visited.spill dv ~fingerprint:fp ~descr [| "aaa"; "bbb" |] with
      | () -> Alcotest.fail "spill accepted a bit-flipped run"
      | exception Snapshot.Error (Snapshot.Corrupt _) -> ());
      Alcotest.(check int) "the flip fired" 1 (Resilience.fired ());
      (* the damaged file is on disk but in no manifest; a clean retry
         of the same spill succeeds and probes answer correctly *)
      Disk_visited.spill dv ~fingerprint:fp ~descr [| "aaa"; "bbb" |];
      Alcotest.(check (array bool))
        "membership intact after retried spill"
        [| true; true; false |]
        (Disk_visited.probe dv [| "aaa"; "bbb"; "ccc" |]))

(* Quota accounting at the store level: bytes tracked across spill and
   restore, the explorer's pre-check, and the last-ditch refusal. *)
let test_quota_accounting () =
  let dir = tmp_dir "quota" in
  let dv = Disk_visited.create ~quota_bytes:9 ~dir ~key_len:3 () in
  Alcotest.(check bool) "room for two keys" false
    (Disk_visited.would_exceed_quota dv ~adding:6);
  Disk_visited.spill dv ~fingerprint:fp ~descr [| "aaa"; "bbb" |];
  Alcotest.(check int) "bytes tracked" 6 (Disk_visited.n_bytes dv);
  Alcotest.(check bool) "room for one more" false
    (Disk_visited.would_exceed_quota dv ~adding:3);
  Alcotest.(check bool) "no room for two more" true
    (Disk_visited.would_exceed_quota dv ~adding:6);
  (* the refusal is defensive: callers are expected to pre-check *)
  (match Disk_visited.spill dv ~fingerprint:fp ~descr [| "ccc"; "ddd" |] with
  | () -> Alcotest.fail "spill breached the quota"
  | exception Snapshot.Error (Snapshot.Io _) -> ());
  Alcotest.(check int) "refused spill wrote nothing" 1
    (Disk_visited.n_runs dv);
  (* restore rebuilds the byte count from the manifest *)
  let dv' =
    Disk_visited.restore ~quota_bytes:9 ~dir ~fingerprint:fp ~descr
      (Disk_visited.manifest dv)
  in
  Alcotest.(check int) "bytes rebuilt on restore" 6 (Disk_visited.n_bytes dv')

(* --------------- explorer parity: spill-and-probe -------------------- *)

let test_external_parity () =
  let cfg = cfg () in
  let rs = Lazy.force oracle in
  (* roomy hot table: the whole visited set stays in RAM *)
  let s1 = E.explore_external ~dir:(tmp_dir "hot") cfg in
  check_stats "all-hot" rs s1;
  Alcotest.(check int) "no runs spilled" 0 s1.Checker_stats.spilled_runs;
  (* tiny hot table: most of the visited set lives in sorted runs *)
  let s2 = E.explore_external ~hot_cap:64 ~dir:(tmp_dir "spill") cfg in
  check_stats "spill-and-probe" rs s2;
  Alcotest.(check bool) "runs spilled" true
    (s2.Checker_stats.spilled_runs > 0);
  Alcotest.(check bool) "probes served" true
    (s2.Checker_stats.disk_probes > 0);
  Alcotest.(check int) "accounting audit"
    (s2.Checker_stats.n_states + s2.Checker_stats.dedup_hits)
    s2.Checker_stats.candidates;
  (* wide (4-byte) keys change the bytes on disk, never the statistics *)
  let s3 = E.explore_external ~hot_cap:64 ~wide:true ~dir:(tmp_dir "wide") cfg in
  check_stats "wide keys" rs s3

let test_external_truncation_parity () =
  let cfg = cfg () in
  let n = (Lazy.force oracle).Checker_stats.n_states in
  List.iter
    (fun b ->
      let _, rs = E.explore_with_stats ~max_states:b cfg in
      let s =
        E.explore_external ~max_states:b ~hot_cap:32 ~dir:(tmp_dir "trunc") cfg
      in
      check_stats (Printf.sprintf "budget %d" b) rs s;
      Alcotest.(check bool) "truncated" false s.Checker_stats.complete;
      Alcotest.(check bool) "stopped by budget" true
        (s.Checker_stats.stop = Checker_stats.Budget))
    [ max 1 (n / 7); n / 2 ]

(* ------------------- checkpoint / resume ----------------------------- *)

let test_resume_after_budget () =
  let cfg = cfg () in
  let dir = tmp_dir "resume" in
  let snap = tmp_snap "resume" in
  let n = (Lazy.force oracle).Checker_stats.n_states in
  let t =
    E.explore_external ~max_states:(n / 3) ~hot_cap:32 ~dir ~snapshot_to:snap
      cfg
  in
  Alcotest.(check bool) "truncated by budget" true
    (t.Checker_stats.stop = Checker_stats.Budget);
  (* the pre-generation checkpoint makes the resume exact: continuing
     with a bigger budget matches a never-truncated run bit for bit *)
  let r = E.explore_external ~resume_from:snap ~hot_cap:32 ~dir cfg in
  check_stats "resumed = uninterrupted" (Lazy.force oracle) r;
  Alcotest.(check bool) "resumed run complete" true r.Checker_stats.complete

let test_resume_after_interrupt () =
  let cfg = cfg () in
  let dir = tmp_dir "intr" in
  let snap = tmp_snap "intr" in
  Snapshot.reset_stop ();
  Snapshot.request_stop ();
  let t =
    Fun.protect ~finally:Snapshot.reset_stop (fun () ->
        E.explore_external ~hot_cap:32 ~dir ~snapshot_to:snap cfg)
  in
  Alcotest.(check bool) "stopped by the request" true
    (t.Checker_stats.stop = Checker_stats.Interrupted);
  let r = E.explore_external ~resume_from:snap ~hot_cap:32 ~dir cfg in
  check_stats "resume after interrupt" (Lazy.force oracle) r

(* Mid-spill scenario: stage 1 truncates with everything still hot;
   stage 2 resumes with a tiny hot table, spills a run, checkpoints and
   is interrupted — its newest checkpoint references both a run file and
   a hot remainder. *)
let mid_spill_setup () =
  let cfg = cfg () in
  let dir = tmp_dir "mid" in
  let snap = tmp_snap "mid" in
  let n = (Lazy.force oracle).Checker_stats.n_states in
  let t1 =
    E.explore_external ~max_states:(n / 5) ~dir ~snapshot_to:snap cfg
  in
  Alcotest.(check bool) "stage 1 truncated" true
    (t1.Checker_stats.stop = Checker_stats.Budget);
  Snapshot.reset_stop ();
  Snapshot.request_stop ();
  let t2 =
    Fun.protect ~finally:Snapshot.reset_stop (fun () ->
        E.explore_external ~resume_from:snap ~snapshot_to:snap ~hot_cap:8 ~dir
          cfg)
  in
  Alcotest.(check bool) "stage 2 interrupted" true
    (t2.Checker_stats.stop = Checker_stats.Interrupted);
  Alcotest.(check bool) "stage 2 spilled a run" true
    (t2.Checker_stats.spilled_runs > 0);
  (cfg, dir, snap)

let test_resume_mid_spill () =
  let cfg, dir, snap = mid_spill_setup () in
  let r = E.explore_external ~resume_from:snap ~hot_cap:8 ~dir cfg in
  check_stats "mid-spill resume = uninterrupted" (Lazy.force oracle) r

let test_salvage_damaged_run () =
  let cfg, dir, snap = mid_spill_setup () in
  (* the file holds the stage-1 chunk (no runs) and stage-2 chunks (run
     manifest + hot remainder): enough history to roll back through *)
  let _, chunks, _ = Snapshot.read_chunks ~path:snap in
  Alcotest.(check bool) "several checkpoints on file" true
    (List.length chunks >= 2);
  (* damage the run the newest checkpoints reference *)
  let path = Filename.concat dir "run-0000.run" in
  Alcotest.(check bool) "spilled run exists" true (Sys.file_exists path);
  let sz = (Unix.stat path).Unix.st_size in
  Unix.truncate path (sz / 2);
  (* a strict resume refuses: the newest checkpoint's manifest no longer
     validates *)
  (match E.explore_external ~resume_from:snap ~dir cfg with
  | _ -> Alcotest.fail "strict resume accepted a damaged run file"
  | exception Snapshot.Error _ -> ());
  (* salvage walks back to the stage-1 checkpoint (which references no
     runs), deletes the damaged stray, and still completes exactly *)
  let r =
    E.explore_external ~resume_from:snap ~salvage:true ~hot_cap:8 ~dir cfg
  in
  check_stats "salvaged resume = uninterrupted" (Lazy.force oracle) r;
  Alcotest.(check bool) "salvaged run complete" true r.Checker_stats.complete;
  (* the damaged file was deleted on rollback; if a run lives at that
     name again it is a fresh spill from the salvaged resume, not the
     truncated original *)
  if Sys.file_exists path then
    Alcotest.(check bool) "rewritten, not the truncated original" true
      ((Unix.stat path).Unix.st_size <> sz / 2)

(* A byte quota on the run store is an honest resource limit, not a
   crash: the explorer stops before the spill that would breach it,
   flushes a checkpoint, and reports [Disk_full]; resuming on a bigger
   disk completes bit-identically. *)
let test_quota_degrades_gracefully () =
  let cfg = cfg () in
  let dir = tmp_dir "quotax" in
  let snap = tmp_snap "quotax" in
  let t =
    E.explore_external ~hot_cap:8 ~disk_quota_bytes:16 ~dir ~snapshot_to:snap
      cfg
  in
  Alcotest.(check bool) "truncated, not crashed" false
    t.Checker_stats.complete;
  Alcotest.(check bool) "stop reason is disk_full" true
    (t.Checker_stats.stop = Checker_stats.Disk_full);
  Alcotest.(check int) "no run breached the quota" 0
    t.Checker_stats.spilled_runs;
  Alcotest.(check bool) "made some progress first" true
    (t.Checker_stats.n_states >= 1);
  Alcotest.(check bool) "checkpoint flushed" true (Sys.file_exists snap);
  let contains ~affix s =
    let n = String.length affix and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
    n = 0 || go 0
  in
  Alcotest.(check bool) "stop tag in json" true
    (contains ~affix:"\"disk_full\"" (Checker_stats.to_json t));
  (* same dir, quota lifted: the resume completes to the oracle *)
  let r = E.explore_external ~resume_from:snap ~hot_cap:8 ~dir cfg in
  check_stats "resume without quota = uninterrupted" (Lazy.force oracle) r;
  Alcotest.(check bool) "resumed run complete" true r.Checker_stats.complete

let suite =
  [
    Alcotest.test_case "run store round-trips" `Quick test_store_roundtrip;
    Alcotest.test_case "restore deletes stray runs" `Quick
      test_restore_deletes_strays;
    Alcotest.test_case "restore refuses damage" `Quick
      test_restore_refuses_damage;
    Alcotest.test_case "tmp spill debris swept" `Quick test_tmp_debris_swept;
    Alcotest.test_case "spill verifies after write" `Quick
      test_spill_verifies_after_write;
    Alcotest.test_case "quota accounting in the run store" `Quick
      test_quota_accounting;
    Alcotest.test_case "quota degrades gracefully, resume completes" `Quick
      test_quota_degrades_gracefully;
    Alcotest.test_case "spill-and-probe = in-RAM stats" `Quick
      test_external_parity;
    Alcotest.test_case "budget truncation parity" `Quick
      test_external_truncation_parity;
    Alcotest.test_case "budget resume is exact" `Quick
      test_resume_after_budget;
    Alcotest.test_case "interrupt resume is exact" `Quick
      test_resume_after_interrupt;
    Alcotest.test_case "mid-spill resume is exact" `Quick
      test_resume_mid_spill;
    Alcotest.test_case "salvage after damaging newest run" `Quick
      test_salvage_damaged_run;
  ]
