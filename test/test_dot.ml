open Check

(* DOT well-formedness: the export of a real explored graph and of
   hand-built corner cases must parse as a digraph — balanced braces, every
   edge between declared nodes, elision under budget. *)

let contains hay needle =
  let nl = String.length needle and sl = String.length hay in
  let rec go i = i + nl <= sl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let render ?max_nodes ?highlight flat =
  Format.asprintf "%a"
    (fun ppf () -> Dot.of_flat ?max_nodes ?highlight flat ppf ())
    ()

let lines s = String.split_on_char '\n' s

let toy_flat () =
  let module E = Check.Explore.Make (Test_runtime.Toy) in
  let cfg = E.config ~ids:[ 5; 9 ] ~inputs:[ (); () ] () in
  E.to_flat (E.explore cfg)

let test_export_shape () =
  let flat = toy_flat () in
  let s = render flat in
  Alcotest.(check bool) "starts a digraph" true
    (String.length s > 20 && String.sub s 0 14 = "digraph states");
  Alcotest.(check bool) "has edges" true (contains s " -> ");
  (* elision kicks in when the budget is small *)
  let s' = render ~max_nodes:3 flat in
  Alcotest.(check bool) "elides beyond budget" true (contains s' "elided")

let test_braces_balanced () =
  let flat = toy_flat () in
  List.iter
    (fun s ->
      let count c =
        String.fold_left (fun acc ch -> if ch = c then acc + 1 else acc) 0 s
      in
      Alcotest.(check bool) "one open brace ends in one close brace" true
        (count '{' = 1 && count '}' = 1);
      Alcotest.(check bool) "closes at the end" true
        (String.length (String.trim s) > 0
        && (String.trim s).[String.length (String.trim s) - 1] = '}'))
    [ render flat; render ~max_nodes:2 flat ]

let test_edges_reference_declared_nodes () =
  let flat = toy_flat () in
  let s = render flat in
  let declared = Hashtbl.create 64 in
  List.iter
    (fun line ->
      let line = String.trim line in
      if String.length line > 1 && line.[0] = 's' && not (contains line "->")
      then
        match String.index_opt line ' ' with
        | Some i -> Hashtbl.replace declared (String.sub line 0 i) ()
        | None -> ())
    (lines s);
  Alcotest.(check bool) "some nodes declared" true (Hashtbl.length declared > 1);
  List.iter
    (fun line ->
      let line = String.trim line in
      if contains line " -> " then begin
        match String.split_on_char ' ' line with
        | src :: "->" :: dst :: _ ->
          Alcotest.(check bool) ("src declared: " ^ src) true
            (Hashtbl.mem declared src);
          Alcotest.(check bool) ("dst declared: " ^ dst) true
            (Hashtbl.mem declared dst)
        | _ -> Alcotest.fail ("unparsable edge line: " ^ line)
      end)
    (lines s)

let test_double_critical_is_red () =
  let flat =
    {
      Flatgraph.n_procs = 2;
      statuses = [| [| Flatgraph.Crit; Crit |] |];
      succs = [| [] |];
      complete = true;
    }
  in
  Alcotest.(check bool) "two-critical state filled red" true
    (contains (render flat) "fillcolor=red")

let test_highlight () =
  let flat =
    {
      Flatgraph.n_procs = 1;
      statuses = [| [| Flatgraph.Try |]; [| Try |] |];
      succs = [| [ { Flatgraph.dst = 1; proc = 0; enters_cs = false } ]; [] |];
      complete = true;
    }
  in
  let s = render ~highlight:[ 1 ] flat in
  Alcotest.(check bool) "highlighted state is orange" true
    (contains s "fillcolor=orange");
  let s' = render flat in
  Alcotest.(check bool) "no highlight, no orange" false
    (contains s' "fillcolor=orange")

let test_cs_entry_edge_is_bold () =
  let flat =
    {
      Flatgraph.n_procs = 1;
      statuses = [| [| Flatgraph.Try |]; [| Crit |] |];
      succs = [| [ { Flatgraph.dst = 1; proc = 0; enters_cs = true } ]; [] |];
      complete = true;
    }
  in
  Alcotest.(check bool) "CS-entry edge is penwidth=2" true
    (contains (render flat) "penwidth=2")

let suite =
  [
    Alcotest.test_case "export shape and elision" `Quick test_export_shape;
    Alcotest.test_case "braces balanced" `Quick test_braces_balanced;
    Alcotest.test_case "edges reference declared nodes" `Quick
      test_edges_reference_declared_nodes;
    Alcotest.test_case "double critical rendered red" `Quick
      test_double_critical_is_red;
    Alcotest.test_case "highlight list rendered orange" `Quick test_highlight;
    Alcotest.test_case "CS-entry edges bold" `Quick test_cs_entry_edge_is_bold;
  ]
