open Anonmem
open Check

(* Cross-validation of the frontier-parallel explorer against the
   sequential reference oracle. The parallel explorer promises a
   bit-identical graph — same state numbering, same transition lists, same
   completeness flag — for any domain count, so every check here is
   exact equality, not just "same verdicts". *)

let domains_under_test = [ 1; 2; 3 ]

module Parity (P : Protocol.PROTOCOL) = struct
  module E = Explore.Make (P)

  (* Compares the sequential oracle against [explore_par] at several
     domain counts and against [explore_with_stats], and sanity-checks
     the reported statistics against the graph. *)
  let run ?max_states (cfg : E.config) =
    let seq = E.explore ?max_states cfg in
    let n_seq = Array.length seq.states in
    List.iter
      (fun d ->
        (* threshold 0 forces the barrier phases from depth 0; the default
           threshold exercises the sequential warm-up / adaptive path *)
        List.iter
          (fun threshold ->
            let par, stats =
              E.explore_par ?max_states ~domains:d ?par_threshold:threshold
                cfg
            in
            let tag what =
              Printf.sprintf "%s (%d domains, threshold %s): %s" P.name d
                (match threshold with Some t -> string_of_int t | None -> "-")
                what
            in
            Alcotest.(check bool)
              (tag "same states")
              true
              (seq.states = par.states);
            Alcotest.(check bool)
              (tag "same transitions")
              true
              (seq.succs = par.succs);
            Alcotest.(check bool)
              (tag "same completeness")
              true
              (seq.complete = par.complete);
            Alcotest.(check int) (tag "stats domains") d
              stats.Checker_stats.domains;
            Alcotest.(check int) (tag "stats states") n_seq
              stats.Checker_stats.n_states;
            (match (threshold, d > 1, n_seq > 1) with
            | Some 0, true, true ->
              (* every generation after depth 0 ran the barrier phases *)
              Alcotest.(check bool)
                (tag "cutover recorded")
                true
                (stats.Checker_stats.cutover = Some 0)
            | _ -> ());
            (* dedup accounting: on a complete run every candidate either
               became a state or deduplicated; truncation drops candidates
               on the floor, so only the inequality survives *)
            if stats.Checker_stats.complete then
              Alcotest.(check int)
                (tag "candidates = states + dedup_hits")
                (stats.Checker_stats.n_states + stats.Checker_stats.dedup_hits)
                stats.Checker_stats.candidates
            else
              Alcotest.(check bool)
                (tag "candidates >= states + dedup_hits")
                true
                (stats.Checker_stats.candidates
                >= stats.Checker_stats.n_states + stats.Checker_stats.dedup_hits);
            Alcotest.(check int)
              (tag "shard loads sum to states")
              n_seq
              (Array.fold_left ( + ) 0 stats.Checker_stats.shard_load))
          [ None; Some 0 ])
      domains_under_test;
    let ws, _ = E.explore_with_stats ?max_states cfg in
    Alcotest.(check bool)
      (P.name ^ ": with_stats parity")
      true
      (seq.states = ws.states && seq.succs = ws.succs
     && seq.complete = ws.complete)
end

(* --- toy protocol (plus budget truncation, where ids must still align) --- *)

module PToy = Parity (Test_runtime.Toy)

let toy_cfg () = PToy.E.config ~ids:[ 5; 9 ] ~inputs:[ (); () ] ()

let test_toy () = PToy.run (toy_cfg ())

let test_toy_truncated () =
  (* the budget must cut the parallel id assignment at the exact same
     candidate as the sequential scan *)
  List.iter (fun b -> PToy.run ~max_states:b (toy_cfg ())) [ 1; 5; 17 ]

(* --- the paper's protocols --- *)

module PMutex = Parity (Coord.Amutex.P)

let test_amutex () =
  List.iter
    (fun nam ->
      PMutex.run
        {
          ids = [| 7; 13 |];
          inputs = [| (); () |];
          namings = [| Naming.identity 3; nam |];
        })
    [ Naming.identity 3; Naming.rotation 3 1 ]

module PCons = Parity (Coord.Consensus.P)

let test_consensus () =
  PCons.run
    {
      ids = [| 7; 13 |];
      inputs = [| 100; 200 |];
      namings = [| Naming.identity 3; Naming.rotation 3 2 |];
    }

module PRen = Parity (Coord.Renaming.P)

let test_renaming () =
  PRen.run
    {
      ids = [| 7; 13 |];
      inputs = [| (); () |];
      namings = [| Naming.identity 3; Naming.rotation 3 1 |];
    }

module PCcp = Parity (Coord.Ccp.P)

let test_ccp () =
  PCcp.run
    {
      ids = [| 7; 13 |];
      inputs = [| (); () |];
      namings = [| Naming.identity 2; Naming.rotation 2 1 |];
    }

(* --- known-name baselines --- *)

module PPet = Parity (Baseline.Peterson.P)

let test_peterson () =
  PPet.run (PPet.E.config ~ids:[ 1; 2 ] ~inputs:[ (); () ] ())

module PBurns = Parity (Baseline.Burns.P)

let test_burns () =
  PBurns.run (PBurns.E.config ~ids:[ 1; 2; 3 ] ~inputs:[ (); (); () ] ())

(* --- engine matrix: sequential vs barrier vs sharded --------------------
   The sharded work-stealing engine promises the same bit-identical graph
   as the barrier engine, for every domain count and any mailbox/steal
   batch size — batches shape scheduling, never the result. Batch size 1
   is the adversarial case: every cross-shard candidate rides its own ring
   slot, maximizing handoff traffic and full-ring backpressure. *)

let engines = [ Explore.Barrier; Explore.Sharded ]

let matrix_domains = [ 2; 4 ]

let batch_configs = [ (Some 1, Some 1); (Some 3, Some 2); (None, None) ]

module Matrix (P : Protocol.PROTOCOL) = struct
  module E = Explore.Make (P)

  let run ?max_states (cfg : E.config) =
    let seq = E.explore ?max_states cfg in
    List.iter
      (fun domains ->
        List.iter
          (fun engine ->
            List.iter
              (fun (handoff_batch, steal_batch) ->
                let par, stats =
                  E.explore_par ?max_states ~domains ~par_threshold:0 ~engine
                    ?handoff_batch ?steal_batch cfg
                in
                let tag what =
                  Printf.sprintf "%s [%s d=%d hb=%s sb=%s]: %s" P.name
                    (Explore.engine_tag engine)
                    domains
                    (match handoff_batch with
                    | Some v -> string_of_int v
                    | None -> "-")
                    (match steal_batch with
                    | Some v -> string_of_int v
                    | None -> "-")
                    what
                in
                Alcotest.(check bool)
                  (tag "same states") true
                  (seq.E.states = par.E.states);
                Alcotest.(check bool)
                  (tag "same transitions") true
                  (seq.E.succs = par.E.succs);
                Alcotest.(check bool)
                  (tag "same completeness") true
                  (seq.E.complete = par.E.complete);
                if stats.Checker_stats.complete then
                  Alcotest.(check int)
                    (tag "candidates = states + dedup_hits")
                    (stats.Checker_stats.n_states
                   + stats.Checker_stats.dedup_hits)
                    stats.Checker_stats.candidates;
                Alcotest.(check int)
                  (tag "shard loads sum to states")
                  (Array.length seq.E.states)
                  (Array.fold_left ( + ) 0 stats.Checker_stats.shard_load))
              batch_configs)
          engines)
      matrix_domains
end

module MToy = Matrix (Test_runtime.Toy)
module MMutex = Matrix (Coord.Amutex.P)

let mutex_cfg =
  {
    MMutex.E.ids = [| 7; 13 |];
    inputs = [| (); () |];
    namings = [| Naming.identity 3; Naming.identity 3 |];
  }

let test_engine_matrix () =
  MToy.run (MToy.E.config ~ids:[ 5; 9 ] ~inputs:[ (); () ] ());
  MMutex.run mutex_cfg

let test_engine_matrix_truncated () =
  (* the budget must cut the merge scan at the exact same candidate in
     every engine, at every batch size *)
  List.iter
    (fun b ->
      MToy.run ~max_states:b (MToy.E.config ~ids:[ 5; 9 ] ~inputs:[ (); () ] ()))
    [ 1; 5; 17 ];
  MMutex.run ~max_states:40 mutex_cfg

(* A worker domain killed by a seeded fault plan mid-campaign: supervised
   mode must absorb it (respawn, requeue) and still produce the exact
   sequential graph, whatever engine was requested. *)
let test_sharded_supervised_kill () =
  let seq = MMutex.E.explore mutex_cfg in
  (* each crew width gets its own seeded kill: the victim's shard lease
     must be reassigned (or the attempt replayed) without the engine
     falling back to barrier phases, and the merged graph must still be
     the sequential oracle's, bit for bit *)
  List.iter
    (fun domains ->
      let plan =
        {
          Resilience.seed = 11;
          faults = [ Resilience.Kill_domain { domain = 1; after_ticks = 40 } ];
        }
      in
      Resilience.arm plan;
      Fun.protect ~finally:Resilience.disarm (fun () ->
          let par, stats =
            MMutex.E.explore_par ~domains ~par_threshold:0
              ~engine:Explore.Sharded ~supervise:true mutex_cfg
          in
          let lbl msg = Printf.sprintf "d%d: %s" domains msg in
          Alcotest.(check bool)
            (lbl "killed worker absorbed: same states")
            true
            (seq.MMutex.E.states = par.MMutex.E.states);
          Alcotest.(check bool)
            (lbl "killed worker absorbed: same transitions")
            true
            (seq.MMutex.E.succs = par.MMutex.E.succs);
          Alcotest.(check bool)
            (lbl "run completed") true stats.Checker_stats.complete))
    [ 2; 4 ]

(* --- statistics coherence on a complete exploration --- *)

let test_stats_coherent () =
  let g, s = PToy.E.explore_with_stats (toy_cfg ()) in
  let n = Array.length g.states in
  Alcotest.(check int) "states" n s.Checker_stats.n_states;
  Alcotest.(check bool) "complete" true s.Checker_stats.complete;
  Alcotest.(check int) "transitions" s.Checker_stats.n_transitions
    (Array.fold_left (fun acc ts -> acc + List.length ts) 0 g.succs);
  (* every state — the initial one included — was interned off a
     candidate; the rest of the candidates deduplicated away. This is the
     regression test for the old off-by-one where the initial state was
     never counted as a candidate. *)
  Alcotest.(check int) "candidate accounting" (s.Checker_stats.dedup_hits + n)
    s.Checker_stats.candidates;
  let sum f = List.fold_left (fun acc d -> acc + f d) 0 s.Checker_stats.depths in
  Alcotest.(check int) "frontiers partition the states" n
    (sum (fun d -> d.Checker_stats.frontier));
  Alcotest.(check int) "per-depth discoveries" (n - 1)
    (sum (fun d -> d.Checker_stats.discovered));
  Alcotest.(check int) "depth samples" (s.Checker_stats.max_depth + 1)
    (List.length s.Checker_stats.depths);
  Alcotest.(check bool) "throughput positive" true
    (Checker_stats.states_per_sec s > 0.);
  Alcotest.(check bool) "json has fields" true
    (let j = Checker_stats.to_json s in
     String.length j > 0
     &&
     let contains needle =
       let nl = String.length needle and sl = String.length j in
       let rec go i =
         i + nl <= sl && (String.sub j i nl = needle || go (i + 1))
       in
       go 0
     in
     contains "\"states\"" && contains "\"states_per_sec\""
     && contains "\"dedup_rate\"")

let suite =
  [
    Alcotest.test_case "par = seq: toy" `Quick test_toy;
    Alcotest.test_case "par = seq: toy under budget" `Quick test_toy_truncated;
    Alcotest.test_case "par = seq: anonymous mutex" `Quick test_amutex;
    Alcotest.test_case "par = seq: consensus" `Quick test_consensus;
    Alcotest.test_case "par = seq: renaming" `Quick test_renaming;
    Alcotest.test_case "par = seq: ccp" `Quick test_ccp;
    Alcotest.test_case "par = seq: peterson" `Quick test_peterson;
    Alcotest.test_case "par = seq: burns" `Quick test_burns;
    Alcotest.test_case "checker stats are coherent" `Quick test_stats_coherent;
    Alcotest.test_case "engine matrix: barrier = sharded = seq" `Quick
      test_engine_matrix;
    Alcotest.test_case "engine matrix under budget" `Quick
      test_engine_matrix_truncated;
    Alcotest.test_case "sharded + supervise absorbs a seeded kill" `Quick
      test_sharded_supervised_kill;
  ]
