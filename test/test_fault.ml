open Anonmem

(* Fault plans, the injector and the chaos adversary, exercised against
   Figure 2 consensus (obstruction-free: survivors must still decide) and
   Figure 1 mutex (deadlock-free only: a covering crash must wedge it). *)

module P = Coord.Consensus.P
module F = Fault.Make (P)
module R = F.R
module CP = Check.Crash_props.Make (P)
module CPM = Check.Crash_props.Make (Coord.Amutex.P)

let mk ?(seed = 1) ?(ids = [ 7; 13 ]) ?(inputs = [ 100; 200 ]) ?(m = 3) () =
  let rng = Rng.create seed in
  let n = List.length ids in
  let cfg : R.config =
    {
      ids = Array.of_list ids;
      inputs = Array.of_list inputs;
      namings = Array.init n (fun _ -> Naming.identity m);
      rng = Some (Rng.split rng);
      record_trace = false;
    }
  in
  (R.create cfg, rng)

let test_single_crashes_enumeration () =
  let plans = Fault.single_crashes ~n:3 ~max_step:4 in
  Alcotest.(check int) "n * (max_step + 1) plans" 15 (List.length plans);
  Alcotest.(check bool) "all single-event" true
    (List.for_all (fun p -> List.length p = 1) plans);
  let covers proc after =
    List.exists
      (function
        | [ Fault.Crash_at_step c ] -> c.proc = proc && c.after = after
        | _ -> false)
      plans
  in
  Alcotest.(check bool) "covers first point" true (covers 0 0);
  Alcotest.(check bool) "covers last point" true (covers 2 4)

let test_crash_at_step_fires_on_time () =
  let rt, _ = mk () in
  let reason, applied =
    F.run_with_plan rt
      [ Fault.Crash_at_step { proc = 0; after = 3 } ]
      (Schedule.solo 0) ~max_steps:100
  in
  (* p0 runs solo; once it has taken 3 steps the injector downs it, and
     solo-of-a-crashed-process yields no pick *)
  Alcotest.(check bool) "schedule exhausted" true
    (reason = R.Schedule_exhausted);
  Alcotest.(check int) "victim stopped at its crash point" 3 (R.steps_of rt 0);
  Alcotest.(check bool) "victim crashed" true (R.crashed rt 0);
  match applied with
  | [ { Fault.proc = 0; what = `Crash; _ } ] -> ()
  | _ -> Alcotest.fail "expected exactly one applied crash for p0"

let test_event_expires_when_victim_decides () =
  (* consensus is only obstruction-free, so give each process a solo
     window — the victim decides long before its distant crash point *)
  let rt, _ = mk () in
  let _, applied =
    F.run_with_plan rt
      [ Fault.Crash_at_step { proc = 0; after = 10_000 } ]
      (Schedule.then_ (Schedule.solo 0) (Schedule.solo 1))
      ~max_steps:5_000
  in
  Alcotest.(check bool) "all decided" true (R.all_decided rt);
  Alcotest.(check int) "event expired, nothing fired" 0 (List.length applied)

let test_crash_and_rejoin_timing () =
  let r =
    CP.run_plan ~seed:5 ~ids:[ 7; 13 ] ~inputs:[ 100; 200 ] ~m:3
      [ Fault.Crash_and_rejoin { proc = 0; after = 2; rejoin_delay = 6 } ]
  in
  (match r.CP.applied with
  | [
   { Fault.proc = 0; what = `Crash; clock = c };
   { Fault.proc = 0; what = `Rejoin; clock = rj };
  ] ->
    Alcotest.(check bool) "rejoin waits out its delay" true (rj - c >= 6)
  | _ -> Alcotest.fail "expected a crash then a rejoin for p0");
  Alcotest.(check bool) "rejoined process recovered and decided" true
    (CP.crash_obstruction_free r)

let test_chaos_respects_bounds_and_seed () =
  let run seed =
    let rt, rng = mk ~ids:[ 7; 13; 21 ] ~inputs:[ 100; 200; 300 ] ~m:5 () in
    let sched, log =
      F.chaos ~crash_prob:0.9 ~min_survivors:2 rt rng (Schedule.random rng)
    in
    ignore seed;
    ignore (R.run rt sched ~max_steps:200);
    (log (), R.survivors rt)
  in
  let applied, survivors = run 1 in
  Alcotest.(check bool) "at most one crash (min_survivors = 2)" true
    (List.length applied <= 1);
  Alcotest.(check bool) "at least two survivors" true
    (List.length survivors >= 2);
  (* determinism: the same seed reproduces the same chaos *)
  let applied', survivors' = run 1 in
  Alcotest.(check bool) "same crashes" true (applied = applied');
  Alcotest.(check bool) "same survivors" true (survivors = survivors')

let test_chaos_composes_with_take_then () =
  let rt, rng = mk ~ids:[ 7; 13; 21 ] ~inputs:[ 100; 200; 300 ] ~m:5 () in
  let chaotic, log =
    F.chaos ~crash_prob:0.3 ~min_survivors:2 rt rng (Schedule.random rng)
  in
  (* a chaotic prefix capped by take, then solo windows: the standard
     crash-obstruction-freedom shape, built from schedule combinators *)
  ignore (R.run rt (Schedule.take 40 chaotic) ~max_steps:1_000);
  List.iter
    (fun i ->
      if not (Protocol.is_decided (R.status rt i)) then
        ignore (R.run rt (Schedule.solo i) ~max_steps:4_000))
    (R.survivors rt);
  Alcotest.(check bool) "every survivor decided" true
    (R.all_survivors_decided rt);
  Alcotest.(check bool) "crash bound held" true (List.length (log ()) <= 1)

let test_consensus_single_crash_sweep () =
  List.iter
    (fun plan ->
      let r =
        CP.run_plan ~seed:3 ~ids:[ 7; 13 ] ~inputs:[ 100; 200 ] ~m:3 plan
      in
      Alcotest.(check bool) "crash-obstruction-free" true
        (CP.crash_obstruction_free r);
      Alcotest.(check bool) "agreement" true
        (CP.agreement_under_crashes ~equal:Int.equal r = None);
      Alcotest.(check bool) "validity" true
        (CP.validity_under_crashes
           ~allowed:(fun v -> v = 100 || v = 200)
           r
        = None))
    (Fault.single_crashes ~n:2 ~max_step:8)

let test_mutex_wedges_exactly_under_covering_crash () =
  let ids = [ 7; 13 ] and inputs = [ (); () ] in
  Alcotest.(check bool) "peer crash in CS wedges the survivor (Thm 6.2)"
    true
    (CPM.wedges_solo ~seed:3 ~prefix_steps:200 ~ids ~inputs ~m:3 ~proc:0
       [ Fault.Crash_in_critical { proc = 1 } ]);
  Alcotest.(check bool) "no crash, no wedge" false
    (CPM.wedges_solo ~seed:3 ~prefix_steps:200 ~ids ~inputs ~m:3 ~proc:0 [])

let suite =
  [
    Alcotest.test_case "single_crashes enumerates the sweep" `Quick
      test_single_crashes_enumeration;
    Alcotest.test_case "crash_at_step fires on time" `Quick
      test_crash_at_step_fires_on_time;
    Alcotest.test_case "events expire when the victim decides" `Quick
      test_event_expires_when_victim_decides;
    Alcotest.test_case "crash-and-rejoin timing" `Quick
      test_crash_and_rejoin_timing;
    Alcotest.test_case "chaos respects bounds; seeded determinism" `Quick
      test_chaos_respects_bounds_and_seed;
    Alcotest.test_case "chaos composes with take/then_/solo" `Quick
      test_chaos_composes_with_take_then;
    Alcotest.test_case "consensus survives every single crash" `Quick
      test_consensus_single_crash_sweep;
    Alcotest.test_case "mutex wedges exactly under a covering crash" `Quick
      test_mutex_wedges_exactly_under_covering_crash;
  ]
