open Anonmem

(* Flatgraph is the protocol-agnostic shape every generic checker consumes;
   to_flat must mirror the explored graph exactly. *)

module E = Check.Explore.Make (Test_runtime.Toy)

let toy_graph () =
  E.explore (E.config ~ids:[ 5; 9 ] ~inputs:[ (); () ] ())

let test_of_status () =
  let check name expect status =
    Alcotest.(check string) name expect
      (Format.asprintf "%a" Check.Flatgraph.pp_status
         (Check.Flatgraph.of_status status))
  in
  check "remainder" "remainder" Protocol.Remainder;
  check "trying" "trying" Protocol.Trying;
  check "critical" "critical" Protocol.Critical;
  check "exiting" "exiting" Protocol.Exiting;
  check "decided" "decided" (Protocol.Decided 42)

let test_to_flat_mirrors_graph () =
  let g = toy_graph () in
  let flat = E.to_flat g in
  Alcotest.(check int) "n_procs" 2 flat.Check.Flatgraph.n_procs;
  Alcotest.(check int) "state count"
    (Array.length g.E.states)
    (Check.Flatgraph.n_states flat);
  Alcotest.(check bool) "complete flag carried" g.E.complete
    flat.Check.Flatgraph.complete;
  Array.iteri
    (fun i st ->
      let want =
        Array.map Check.Flatgraph.of_status (E.statuses st)
      in
      Alcotest.(check bool)
        (Printf.sprintf "statuses of state %d" i)
        true
        (want = flat.Check.Flatgraph.statuses.(i)))
    g.E.states;
  Array.iteri
    (fun i trans ->
      let want =
        List.map
          (fun { E.dst; label = { E.proc; enters_cs } } ->
            { Check.Flatgraph.dst; proc; enters_cs })
          trans
      in
      Alcotest.(check bool)
        (Printf.sprintf "succs of state %d" i)
        true
        (want = flat.Check.Flatgraph.succs.(i)))
    g.E.succs

let test_truncated_flag () =
  let g = E.explore ~max_states:2 (E.config ~ids:[ 5; 9 ] ~inputs:[ (); () ] ())
  in
  Alcotest.(check bool) "graph truncated" false g.E.complete;
  Alcotest.(check bool) "flat truncated" false (E.to_flat g).Check.Flatgraph.complete

let test_every_edge_in_range () =
  let flat = E.to_flat (toy_graph ()) in
  let n = Check.Flatgraph.n_states flat in
  Array.iter
    (fun trans ->
      List.iter
        (fun { Check.Flatgraph.dst; proc; enters_cs = _ } ->
          Alcotest.(check bool) "dst in range" true (dst >= 0 && dst < n);
          Alcotest.(check bool) "proc in range" true (proc >= 0 && proc < 2))
        trans)
    flat.Check.Flatgraph.succs

let suite =
  [
    Alcotest.test_case "of_status mapping" `Quick test_of_status;
    Alcotest.test_case "to_flat mirrors the graph" `Quick
      test_to_flat_mirrors_graph;
    Alcotest.test_case "truncation carried to flat" `Quick test_truncated_flag;
    Alcotest.test_case "edges well-formed" `Quick test_every_edge_in_range;
  ]
