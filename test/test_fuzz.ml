open Anonmem
open Check

(* The differential driver: generated instances must come out with every
   engine leg agreeing, violations must be real (cross-validated) ones, and
   witnesses must replay. *)

module FM = Fuzz.Make (Coord.Amutex.P)
module FC = Fuzz.Make (Coord.Consensus.P)

let unit_inputs _rng ~n = Array.make n ()

let test_mutex_sweep_agrees () =
  let r =
    FM.run ~seed:42 ~attempts:50 ~max_states:4_000
      ~profile:Gen.smoke_profile
      ~properties:[ FM.mutex_me; FM.mutex_df ]
      ~gen_inputs:unit_inputs ()
  in
  (match r.FM.disagreement with
  | Some d -> Alcotest.fail ("engines disagreed: " ^ d.FM.detail)
  | None -> ());
  Alcotest.(check int) "all attempts ran" 50 r.FM.attempts;
  Alcotest.(check int) "all attempts agreed" 50 r.FM.agreed;
  Alcotest.(check bool) "boundary bias found even-m violations" true
    (r.FM.violations > 0);
  Alcotest.(check bool) "m-even class was drawn" true
    (List.mem_assoc "m-even" r.FM.by_boundary);
  Alcotest.(check bool) "coprime class was drawn" true
    (List.mem_assoc "coprime" r.FM.by_boundary)

let test_mutex_run_reproducible () =
  let run () =
    FM.run ~seed:9 ~attempts:20 ~max_states:4_000
      ~profile:Gen.smoke_profile ~probes:2
      ~properties:[ FM.mutex_me; FM.mutex_df ]
      ~gen_inputs:unit_inputs ()
  in
  let a = run () and b = run () in
  Alcotest.(check int) "violations reproducible" a.FM.violations b.FM.violations;
  Alcotest.(check int) "undecided reproducible" a.FM.undecided b.FM.undecided;
  Alcotest.(check bool) "boundary histogram reproducible" true
    (a.FM.by_boundary = b.FM.by_boundary)

let test_fixed_even_m_yields_replayable_lasso () =
  (* pin the broken instance class: n=2, m=4 cannot be deadlock-free
     (Theorem 3.1) — the driver must find it and hand back a lasso bundle
     whose replay reproduces the livelock *)
  let r =
    FM.run ~seed:7 ~attempts:10 ~max_states:20_000
      ~fixed:(Some 2, Some 4)
      ~properties:[ FM.mutex_df ]
      ~gen_inputs:unit_inputs ()
  in
  (match r.FM.disagreement with
  | Some d -> Alcotest.fail ("engines disagreed: " ^ d.FM.detail)
  | None -> ());
  Alcotest.(check bool) "violations found" true (r.FM.violations > 0);
  match r.FM.first_witness with
  | None -> Alcotest.fail "violation without a witness bundle"
  | Some (name, b) ->
    Alcotest.(check string) "the deadlock-freedom property failed"
      "deadlock-freedom" name;
    Alcotest.(check bool) "lasso witness has a loop" true
      (Array.length b.FM.S.loop > 0);
    Alcotest.(check bool) "bundle replays to the violation" true
      (FM.S.hits FM.S.Lasso b)

let test_consensus_sweep () =
  let gen_inputs rng ~n = Array.init n (fun _ -> 100 * (1 + Rng.int rng n)) in
  let r =
    FC.run ~seed:3 ~attempts:30 ~max_states:8_000
      ~profile:Gen.smoke_profile
      ~properties:
        [
          FC.agreement ~equal:Int.equal;
          FC.validity ~allowed:(fun inputs o -> Array.mem o inputs);
        ]
      ~gen_inputs ()
  in
  (match r.FC.disagreement with
  | Some d -> Alcotest.fail ("engines disagreed: " ^ d.FC.detail)
  | None -> ());
  Alcotest.(check int) "all attempts agreed" r.FC.attempts r.FC.agreed

let test_time_budget_stops_early () =
  let r =
    FM.run ~seed:1 ~attempts:1_000_000 ~time_budget:0.2 ~max_states:2_000
      ~profile:Gen.smoke_profile ~probes:0
      ~properties:[ FM.mutex_me ]
      ~gen_inputs:unit_inputs ()
  in
  Alcotest.(check bool) "stopped well short of the attempt cap" true
    (r.FM.attempts < 1_000_000 && r.FM.attempts > 0)

let suite =
  [
    Alcotest.test_case "mutex sweep: engines agree, boundaries hit" `Quick
      test_mutex_sweep_agrees;
    Alcotest.test_case "report reproducible from seed" `Quick
      test_mutex_run_reproducible;
    Alcotest.test_case "fixed even-m finds a replayable lasso" `Quick
      test_fixed_even_m_yields_replayable_lasso;
    Alcotest.test_case "consensus sweep with validity" `Quick
      test_consensus_sweep;
    Alcotest.test_case "time budget stops early" `Quick
      test_time_budget_stops_early;
  ]
