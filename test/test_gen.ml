open Anonmem
open Check

(* The fuzzing generators: deterministic in the seed, well-formed, and
   actually biased toward the paper's feasibility boundaries. *)

let test_params_deterministic () =
  let draw seed =
    let rng = Rng.create seed in
    List.init 20 (fun _ -> Gen.params rng)
  in
  Alcotest.(check bool) "same seed, same stream" true (draw 7 = draw 7);
  Alcotest.(check bool) "different seed, different stream" true
    (draw 7 <> draw 8)

let test_params_ranges () =
  List.iter
    (fun profile ->
      let rng = Rng.create 11 in
      for _ = 1 to 200 do
        let p = Gen.params ~profile rng in
        Alcotest.(check bool) "n in range" true
          (p.Gen.n >= profile.Gen.n_min && p.Gen.n <= profile.Gen.n_max);
        Alcotest.(check bool) "m in range" true
          (p.Gen.m >= profile.Gen.m_min && p.Gen.m <= profile.Gen.m_max);
        Alcotest.(check int) "one id per proc" p.Gen.n
          (Array.length p.Gen.ids);
        Alcotest.(check int) "one naming per proc" p.Gen.n
          (Array.length p.Gen.namings)
      done)
    [ Gen.default_profile; Gen.smoke_profile ]

let test_ids_distinct_positive () =
  let rng = Rng.create 3 in
  for _ = 1 to 100 do
    let n = 2 + Rng.int rng 4 in
    let ids = Gen.ids rng ~n in
    Alcotest.(check int) "n ids" n (Array.length ids);
    let sorted = List.sort_uniq compare (Array.to_list ids) in
    Alcotest.(check int) "all distinct" n (List.length sorted);
    Array.iter
      (fun id -> Alcotest.(check bool) "positive" true (id > 0))
      ids
  done

let test_namings_are_permutations () =
  let rng = Rng.create 5 in
  for _ = 1 to 200 do
    let n = 2 + Rng.int rng 2 in
    let m = 2 + Rng.int rng 5 in
    let nms = Gen.namings rng ~n ~m in
    Alcotest.(check int) "one per proc" n (Array.length nms);
    Array.iter
      (fun a ->
        (* Naming.of_array validates permutation-ness; raising fails the
           test *)
        ignore (Naming.of_array a);
        Alcotest.(check int) "size m" m (Array.length a))
      nms
  done

let test_boundary_label () =
  Alcotest.(check string) "m even" "m-even" (Gen.boundary_label ~n:2 ~m:4);
  Alcotest.(check string) "odd, shared divisor" "shared-divisor"
    (Gen.boundary_label ~n:3 ~m:3);
  Alcotest.(check string) "coprime" "coprime" (Gen.boundary_label ~n:2 ~m:3);
  Alcotest.(check string) "coprime trivially" "coprime"
    (Gen.boundary_label ~n:3 ~m:5)

let test_boundary_bias () =
  (* every boundary class must be hit often at n up to 3 *)
  let rng = Rng.create 42 in
  let counts = Hashtbl.create 4 in
  let total = 600 in
  for _ = 1 to total do
    let p = Gen.params rng in
    let l = Gen.boundary_label ~n:p.Gen.n ~m:p.Gen.m in
    Hashtbl.replace counts l (1 + Option.value ~default:0 (Hashtbl.find_opt counts l))
  done;
  List.iter
    (fun label ->
      let c = Option.value ~default:0 (Hashtbl.find_opt counts label) in
      Alcotest.(check bool)
        (Printf.sprintf "%s hit at least 10%% of draws (%d/%d)" label c total)
        true
        (c * 10 >= total))
    [ "m-even"; "shared-divisor"; "coprime" ]

let test_steps_in_range () =
  let rng = Rng.create 9 in
  List.iter
    (fun gen ->
      let s = gen rng ~n:3 ~len:500 in
      Alcotest.(check int) "length" 500 (Array.length s);
      Array.iter
        (fun p -> Alcotest.(check bool) "proc index" true (p >= 0 && p < 3))
        s)
    [ Gen.steps; Gen.burst_steps ]

let test_burst_texture () =
  (* bursts must actually produce runs of the same process *)
  let rng = Rng.create 13 in
  let s = Gen.burst_steps rng ~n:3 ~len:300 in
  let longest = ref 0 and cur = ref 0 in
  Array.iteri
    (fun i p ->
      if i > 0 && s.(i - 1) = p then incr cur else cur := 1;
      if !cur > !longest then longest := !cur)
    s;
  Alcotest.(check bool) "has a run of at least 5" true (!longest >= 5)

let test_crashes_well_formed () =
  let rng = Rng.create 17 in
  for _ = 1 to 300 do
    let n = 2 + Rng.int rng 3 in
    let cs = Gen.crashes rng ~n ~horizon:100 ~max_crashes:(n + 2) in
    Alcotest.(check bool) "bounded count" true (Array.length cs <= n + 2);
    let clocks = Array.to_list (Array.map fst cs) in
    Alcotest.(check bool) "clocks sorted" true
      (clocks = List.sort compare clocks);
    Alcotest.(check int) "clocks distinct" (List.length clocks)
      (List.length (List.sort_uniq compare clocks));
    Array.iter
      (fun (c, p) ->
        Alcotest.(check bool) "clock in horizon" true (c >= 0 && c < 100);
        Alcotest.(check bool) "proc in range" true (p >= 0 && p < n))
      cs;
    let crashed = List.sort_uniq compare (Array.to_list (Array.map snd cs)) in
    Alcotest.(check bool) "at least one survivor" true
      (List.length crashed < n)
  done

let suite =
  [
    Alcotest.test_case "params deterministic in seed" `Quick
      test_params_deterministic;
    Alcotest.test_case "params respect profile ranges" `Quick
      test_params_ranges;
    Alcotest.test_case "ids distinct and positive" `Quick
      test_ids_distinct_positive;
    Alcotest.test_case "namings are permutations" `Quick
      test_namings_are_permutations;
    Alcotest.test_case "boundary labels" `Quick test_boundary_label;
    Alcotest.test_case "boundary bias covers all classes" `Quick
      test_boundary_bias;
    Alcotest.test_case "schedule scripts in range" `Quick test_steps_in_range;
    Alcotest.test_case "burst scripts have bursts" `Quick test_burst_texture;
    Alcotest.test_case "crash plans well-formed" `Quick
      test_crashes_well_formed;
  ]
