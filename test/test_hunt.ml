open Anonmem

(* Replay determinism: a hunt's witness seed must reproduce the identical
   violating trace, attempt after attempt. The target is E16's reliable
   witness — Figure 1's mutex believing m = 3 while memory has 5 registers,
   where mutual exclusion actually breaks under bursty schedules. *)

module Fig1_pinned3 = Wrap.Fix_m (Coord.Amutex.P) (struct let m = 3 end)
module H = Check.Hunt.Make (Fig1_pinned3)
module HC = Check.Hunt.Make (Coord.Consensus.P)

let ids = [ 7; 13 ]
let inputs = [ (); () ]

let test_replay_reproduces_witness () =
  let o, trace =
    H.hunt ~attempts:400 ~violation:H.mutex_violation ~ids ~inputs ~m:5 ()
  in
  match o.Check.Hunt.witness_seed with
  | None ->
    Alcotest.fail "hunter found no witness in 400 attempts (E16 expects one)"
  | Some seed ->
    let witness =
      match trace with
      | Some t -> t
      | None -> Alcotest.fail "witness seed without a witness trace"
    in
    let hit1, t1 =
      H.replay ~violation:H.mutex_violation ~ids ~inputs ~m:5 seed
    in
    let hit2, t2 =
      H.replay ~violation:H.mutex_violation ~ids ~inputs ~m:5 seed
    in
    Alcotest.(check bool) "replay hits the violation" true (hit1 && hit2);
    Alcotest.(check bool) "replay matches the hunt's witness trace" true
      (witness = t1);
    Alcotest.(check bool) "replays are identical" true (t1 = t2)

let strategy_name = function
  | Check.Hunt.Uniform -> "uniform"
  | Check.Hunt.Bursts -> "bursts"
  | Check.Hunt.Chaos -> "chaos"

(* Every strategy's attempts are pure functions of the seed: hunting and
   replaying with the same strategy must agree bit-for-bit, witness or no
   witness. *)
let test_strategy_replay_identical strategy () =
  let name = strategy_name strategy in
  let o, trace =
    H.hunt ~strategy ~attempts:200 ~violation:H.mutex_violation ~ids ~inputs
      ~m:5 ()
  in
  let rerun seed =
    H.replay ~strategy ~violation:H.mutex_violation ~ids ~inputs ~m:5 seed
  in
  match (o.Check.Hunt.witness_seed, trace) with
  | Some seed, Some witness ->
    let hit1, t1 = rerun seed in
    let hit2, t2 = rerun seed in
    Alcotest.(check bool) (name ^ ": replay hits") true (hit1 && hit2);
    Alcotest.(check bool)
      (name ^ ": replay matches the hunt's witness trace")
      true (witness = t1);
    Alcotest.(check bool) (name ^ ": replays identical") true (t1 = t2)
  | _ ->
    (* no witness this time (uniform schedules rarely find one, E16) —
       determinism must hold all the same on an arbitrary attempt seed *)
    let hit1, t1 = rerun 17 in
    let hit2, t2 = rerun 17 in
    Alcotest.(check bool) (name ^ ": hits agree") hit1 hit2;
    Alcotest.(check bool) (name ^ ": replays identical") true (t1 = t2)

let test_chaos_strategy_deterministic () =
  (* consensus under the crash-injecting strategy: attempts stay pure
     functions of their seed even when the adversary downs processes *)
  let replay () =
    HC.replay ~strategy:Check.Hunt.Chaos
      ~violation:(HC.disagreement ~equal:Int.equal)
      ~ids:[ 7; 13; 21 ] ~inputs:[ 100; 200; 300 ] ~m:5 5
  in
  let hit1, t1 = replay () in
  let hit2, t2 = replay () in
  Alcotest.(check bool) "no false disagreement witness" false (hit1 || hit2);
  Alcotest.(check bool) "chaos replays are identical" true (t1 = t2)

let suite =
  [
    Alcotest.test_case "witness seed replays to the identical trace" `Slow
      test_replay_reproduces_witness;
    Alcotest.test_case "uniform strategy replays bit-identically" `Quick
      (test_strategy_replay_identical Check.Hunt.Uniform);
    Alcotest.test_case "bursts strategy replays bit-identically" `Quick
      (test_strategy_replay_identical Check.Hunt.Bursts);
    Alcotest.test_case "chaos strategy replays bit-identically" `Quick
      (test_strategy_replay_identical Check.Hunt.Chaos);
    Alcotest.test_case "chaos attempts are deterministic in their seed" `Quick
      test_chaos_strategy_deterministic;
  ]
