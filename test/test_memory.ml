open Anonmem

module IntValue = struct
  type t = int

  let init = 0
  let equal = Int.equal
  let compare = Int.compare
  let pp = Format.pp_print_int
end

module Mem = Memory.Make (IntValue)

let test_create_initial () =
  let m = Mem.create ~m:4 in
  Alcotest.(check int) "size" 4 (Mem.size m);
  for j = 0 to 3 do
    Alcotest.(check int) "initial value" 0 (Mem.get_physical m j)
  done

let test_read_write_identity () =
  let m = Mem.create ~m:3 in
  let nm = Naming.identity 3 in
  Mem.write m nm 1 42;
  Alcotest.(check int) "read back" 42 (Mem.read m nm 1);
  Alcotest.(check int) "physical location" 42 (Mem.get_physical m 1)

let test_read_write_permuted () =
  let m = Mem.create ~m:3 in
  let nm = Naming.of_array [| 2; 0; 1 |] in
  Mem.write m nm 0 7;
  (* local 0 is physical 2 *)
  Alcotest.(check int) "landed on physical 2" 7 (Mem.get_physical m 2);
  Alcotest.(check int) "physical 0 untouched" 0 (Mem.get_physical m 0);
  Alcotest.(check int) "reads through the same naming" 7 (Mem.read m nm 0)

let test_two_views_same_register () =
  (* The same physical register seen under different local names. *)
  let m = Mem.create ~m:4 in
  let a = Naming.identity 4 in
  let b = Naming.rotation 4 1 in
  Mem.write m a 1 99;
  (* physical 1; under b, local 0 is physical 1 *)
  Alcotest.(check int) "b sees a's write at its local 0" 99 (Mem.read m b 0)

let test_rmw () =
  let m = Mem.create ~m:2 in
  let nm = Naming.identity 2 in
  Mem.write m nm 0 10;
  let old_value, new_value, payload = Mem.rmw m nm 0 (fun v -> (v + 5, v * 2)) in
  Alcotest.(check int) "old" 10 old_value;
  Alcotest.(check int) "new" 15 new_value;
  Alcotest.(check int) "payload from same old value" 20 payload;
  Alcotest.(check int) "stored" 15 (Mem.read m nm 0)

let test_rmw_single_evaluation () =
  (* a counting closure must fire exactly once per rmw *)
  let m = Mem.create ~m:1 in
  let nm = Naming.identity 1 in
  let calls = ref 0 in
  let _, new_value, payload =
    Mem.rmw m nm 0 (fun v ->
        incr calls;
        (v + 1, "next-local"))
  in
  Alcotest.(check int) "closure evaluated once" 1 !calls;
  Alcotest.(check int) "new value stored" 1 new_value;
  Alcotest.(check string) "payload threaded through" "next-local" payload;
  ignore (Mem.rmw m nm 0 (fun v -> (incr calls; v + 1), ()));
  Alcotest.(check int) "still once per call" 2 !calls

let test_snapshot_restore () =
  let m = Mem.create ~m:3 in
  let nm = Naming.identity 3 in
  Mem.write m nm 0 1;
  Mem.write m nm 2 3;
  let snap = Mem.snapshot m in
  Mem.write m nm 0 100;
  Mem.restore m snap;
  Alcotest.(check int) "restored" 1 (Mem.get_physical m 0);
  Alcotest.(check int) "restored untouched" 3 (Mem.get_physical m 2)

let test_snapshot_is_copy () =
  let m = Mem.create ~m:2 in
  let snap = Mem.snapshot m in
  Mem.write m (Naming.identity 2) 0 5;
  Alcotest.(check int) "snapshot unaffected by later writes" 0
    snap.Mem.snap_regs.(0);
  Alcotest.(check int) "contents is a copy too" 5
    (Mem.contents m).(0)

let test_reset () =
  let m = Mem.create ~m:3 in
  Mem.write m (Naming.identity 3) 1 9;
  Mem.reset m;
  for j = 0 to 2 do
    Alcotest.(check int) "reset to init" 0 (Mem.get_physical m j)
  done

let test_write_count () =
  let m = Mem.create ~m:2 in
  let nm = Naming.identity 2 in
  Alcotest.(check int) "starts at 0" 0 (Mem.write_count m);
  Mem.write m nm 0 1;
  ignore (Mem.rmw m nm 1 (fun v -> (v + 1, ())));
  ignore (Mem.read m nm 0);
  Alcotest.(check int) "reads don't count" 2 (Mem.write_count m)

let test_write_count_reset () =
  (* regression: the counter used to survive [reset] *)
  let m = Mem.create ~m:2 in
  let nm = Naming.identity 2 in
  Mem.write m nm 0 1;
  Mem.write m nm 1 2;
  Alcotest.(check int) "two writes counted" 2 (Mem.write_count m);
  Mem.reset m;
  Alcotest.(check int) "reset zeroes the counter" 0 (Mem.write_count m);
  Mem.write m nm 0 3;
  Alcotest.(check int) "counts restart from zero" 1 (Mem.write_count m)

let test_write_count_restore () =
  (* regression: the counter used to survive [restore] untouched *)
  let m = Mem.create ~m:2 in
  let nm = Naming.identity 2 in
  Mem.write m nm 0 1;
  Mem.write m nm 1 2;
  let snap = Mem.snapshot m in
  Mem.write m nm 0 9;
  Mem.write m nm 0 10;
  Alcotest.(check int) "four writes before restore" 4 (Mem.write_count m);
  Mem.restore m snap;
  Alcotest.(check int) "restore rewinds the counter" 2 (Mem.write_count m);
  Mem.write m nm 1 7;
  Alcotest.(check int) "counting resumes from the checkpoint" 3
    (Mem.write_count m)

let suite =
  [
    Alcotest.test_case "create initializes" `Quick test_create_initial;
    Alcotest.test_case "read/write via identity" `Quick
      test_read_write_identity;
    Alcotest.test_case "read/write via permutation" `Quick
      test_read_write_permuted;
    Alcotest.test_case "two views of one register" `Quick
      test_two_views_same_register;
    Alcotest.test_case "rmw" `Quick test_rmw;
    Alcotest.test_case "rmw evaluates its closure once" `Quick
      test_rmw_single_evaluation;
    Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
    Alcotest.test_case "snapshot is a copy" `Quick test_snapshot_is_copy;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "write count" `Quick test_write_count;
    Alcotest.test_case "reset zeroes the write count" `Quick
      test_write_count_reset;
    Alcotest.test_case "restore rewinds the write count" `Quick
      test_write_count_restore;
  ]
