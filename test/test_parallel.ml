open Anonmem

(* The multicore backend: real domains over real atomics. These tests
   assert safety only (the OS scheduler is a weaker adversary than the
   simulator's, and obstruction-free progress is not guaranteed under
   contention) — every run that does decide must be correct. *)

module PCons = Parallel.Prun.Make (Coord.Consensus.P)
module PRen = Parallel.Prun.Make (Coord.Renaming.P)
module PMutex = Parallel.Prun.Make (Coord.Amutex.P)
module PCcp = Parallel.Prun.Make (Coord.Ccp.P)

let namings_of rng n m = Array.init n (fun _ -> Naming.random rng m)

let test_consensus_domains () =
  for round = 1 to 8 do
    let n = 2 + (round mod 2) in
    let m = (2 * n) - 1 in
    let rng = Rng.create (round * 13) in
    let inputs = Array.init n (fun i -> (i + 1) * 100) in
    let cfg : PCons.config =
      {
        ids = Array.init n (fun i -> (i + 1) * 7);
        inputs;
        namings = namings_of rng n m;
        seed = round;
      }
    in
    let o = PCons.run_decide cfg in
    let decided =
      Array.to_list o.results |> List.filter_map (fun r -> r.PCons.output)
    in
    (* agreement + validity on whatever did decide *)
    (match decided with
    | [] -> ()
    | v :: rest ->
      List.iter (fun w -> Alcotest.(check int) "agreement" v w) rest;
      Alcotest.(check bool) "validity" true (Array.exists (( = ) v) inputs));
    (* domains uncontended at the end usually all decide; don't require it *)
    Alcotest.(check bool) "someone decided" true (decided <> [])
  done

let test_renaming_domains () =
  for round = 1 to 6 do
    let n = 2 + (round mod 2) in
    let m = (2 * n) - 1 in
    let rng = Rng.create (round * 29) in
    let cfg : PRen.config =
      {
        ids = Array.init n (fun i -> (i + 1) * 13);
        inputs = Array.make n ();
        namings = namings_of rng n m;
        seed = round;
      }
    in
    let o = PRen.run_decide cfg in
    let names =
      Array.to_list o.results |> List.filter_map (fun r -> r.PRen.output)
    in
    Alcotest.(check bool) "names within {1..n}" true
      (List.for_all (fun v -> 1 <= v && v <= n) names);
    Alcotest.(check bool) "names distinct" true
      (List.length (List.sort_uniq compare names) = List.length names)
  done

let test_mutex_domains () =
  for round = 1 to 4 do
    let m = 3 + (2 * (round mod 2)) in
    let cfg : PMutex.config =
      {
        ids = [| 7; 13 |];
        inputs = [| (); () |];
        namings =
          (let rng = Rng.create (round * 41) in
           namings_of rng 2 m);
        seed = round;
      }
    in
    let o = PMutex.run_sessions ~step_budget:400_000 ~sessions:50 cfg in
    Alcotest.(check bool) "no mutual-exclusion violation" true
      (not o.mutex_violation);
    let total =
      Array.fold_left (fun acc r -> acc + r.PMutex.cs_entries) 0 o.results
    in
    Alcotest.(check bool) "critical sections were used" true (total > 0)
  done

let test_ccp_domains () =
  for round = 1 to 8 do
    let n = 2 + (round mod 3) in
    let rng = Rng.create (round * 53) in
    let cfg : PCcp.config =
      {
        ids = Array.init n (fun i -> (i + 1) * 3);
        inputs = Array.make n ();
        namings = namings_of rng n 2;
        seed = round;
      }
    in
    let o = PCcp.run_decide ~step_budget:200_000 cfg in
    (* whoever chose must have chosen the same physical register *)
    let phys =
      Array.to_list
        (Array.mapi
           (fun i (r : PCcp.proc_result) ->
             Option.map (fun loc -> Naming.apply cfg.namings.(i) loc) r.output)
           o.results)
      |> List.filter_map Fun.id
    in
    match phys with
    | [] -> ()
    | a :: rest ->
      List.iter (fun b -> Alcotest.(check int) "same register" a b) rest
  done

let test_memory_snapshot_consistent () =
  (* after a solo (n=1) consensus run the memory holds the decided pair in
     every register *)
  let cfg : PCons.config =
    {
      ids = [| 5 |];
      inputs = [| 42 |];
      namings = [| Naming.identity 1 |];
      seed = 1;
    }
  in
  let o = PCons.run_decide cfg in
  Alcotest.(check (option int)) "decided own input" (Some 42)
    o.results.(0).PCons.output;
  Array.iter
    (fun (v : Coord.Consensus.Value.t) ->
      Alcotest.(check int) "register holds the decision" 42 v.pref)
    o.memory

(* ---------------- robustness: crashes, corpses and watchdogs --------- *)

(* A protocol whose id-1 process raises out of its step; its peers spin
   forever. Before the per-domain exception capture + shared stop flag,
   this escaped through [Domain.join] while the peers burned their whole
   budgets against a corpse. *)
module Boom_p = struct
  module Value = struct
    type t = int

    let init = 0
    let equal = Int.equal
    let compare = Int.compare
    let pp = Format.pp_print_int
  end

  type input = unit
  type output = int
  type local = Start | Spin

  let name = "boom"
  let default_registers ~n:_ = 1
  let start ~n:_ ~m:_ ~id:_ () = Start

  let step ~n:_ ~m:_ ~id local : (local, Value.t) Protocol.step =
    match local with
    | Start -> if id = 1 then failwith "boom" else Internal Spin
    | Spin -> Internal Spin

  let status _ = Protocol.Trying
  let compare_local = Stdlib.compare
  let symmetric = false
  let map_value_ids _ v = v
  let map_local_ids _ l = l
  let pp_local ppf _ = Format.pp_print_string ppf "<boom>"
  let pp_input ppf () = Format.pp_print_string ppf "()"
  let pp_output = Format.pp_print_int
end

module PBoom = Parallel.Prun.Make (Boom_p)

(* A protocol whose id-1 process blocks inside a single step until
   released — a livelocked domain no step budget can bound. Before the
   heartbeat watchdog, [run_decide] sat in [Domain.join] forever. *)
let hang_release = Atomic.make false

(* bumped by the hanging step the moment it leaves its blocking loop, so
   tests can wait for the leaked domain on an event instead of a timed
   sleep (the old [Unix.sleepf 0.05] raced the domain's exit on loaded
   machines) *)
let hang_exited = Atomic.make 0

module Hang_p = struct
  module Value = Boom_p.Value

  type input = unit
  type output = int
  type local = Start | Done

  let name = "hang"
  let default_registers ~n:_ = 1
  let start ~n:_ ~m:_ ~id:_ () = Start

  let step ~n:_ ~m:_ ~id local : (local, Value.t) Protocol.step =
    match local with
    | Start ->
      if id = 1 then begin
        while not (Atomic.get hang_release) do
          Domain.cpu_relax ()
        done;
        Atomic.incr hang_exited
      end;
      Internal Done
    | Done -> invalid_arg "hang: decided"

  let status = function Start -> Protocol.Trying | Done -> Protocol.Decided 0
  let compare_local = Stdlib.compare
  let symmetric = false
  let map_value_ids _ v = v
  let map_local_ids _ l = l
  let pp_local ppf _ = Format.pp_print_string ppf "<hang>"
  let pp_input ppf () = Format.pp_print_string ppf "()"
  let pp_output = Format.pp_print_int
end

module PHang = Parallel.Prun.Make (Hang_p)

let test_escaped_exception_degrades_gracefully () =
  let budget = 10_000_000 in
  let cfg : PBoom.config =
    {
      ids = [| 1; 2; 3 |];
      inputs = [| (); (); () |];
      namings = Array.init 3 (fun _ -> Naming.identity 1);
      seed = 1;
    }
  in
  let o = PBoom.run_decide ~step_budget:budget cfg in
  Alcotest.(check bool) "raising process recorded as crashed" true
    o.results.(0).PBoom.crashed;
  Alcotest.(check bool) "peers did not crash" false
    (o.results.(1).PBoom.crashed || o.results.(2).PBoom.crashed);
  Alcotest.(check bool) "no domain leaked" true
    (Array.for_all (fun r -> not r.PBoom.timed_out) o.results);
  Alcotest.(check bool) "peers stopped early, not at their budgets" true
    (o.results.(1).PBoom.steps < budget && o.results.(2).PBoom.steps < budget)

let test_watchdog_returns_partial_outcome () =
  Atomic.set hang_release false;
  let cfg : PHang.config =
    {
      ids = [| 1; 2; 3 |];
      inputs = [| (); (); () |];
      namings = Array.init 3 (fun _ -> Naming.identity 1);
      seed = 1;
    }
  in
  let o = PHang.run_decide ~watchdog_s:0.2 ~max_stall_retries:0 ~step_budget:1_000 cfg in
  (* run_decide returned at all: this call deadlocked in Domain.join
     before the watchdog existed. Release the leaked domain and wait for
     it to actually leave its blocking loop (event, not a timed sleep)
     so it terminates before the test binary exits. *)
  let exited = Atomic.get hang_exited in
  Atomic.set hang_release true;
  while Atomic.get hang_exited = exited do
    Domain.cpu_relax ()
  done;
  Alcotest.(check bool) "watchdog fired" true o.watchdog_fired;
  Alcotest.(check bool) "stuck domain synthesised as timed_out" true
    o.results.(0).PHang.timed_out;
  Alcotest.(check int) "exactly one domain was leaked" 1
    (Array.fold_left
       (fun acc r -> if r.PHang.timed_out then acc + 1 else acc)
       0 o.results);
  Alcotest.(check bool) "peers still decided" true
    (o.results.(1).PHang.output = Some 0 && o.results.(2).PHang.output = Some 0)

let test_stall_retry_recovers () =
  (* a step that stalls well past the patience window but resumes before
     the backoff budget runs out: the watchdog must NOT fire — the stall
     is absorbed by doubled-patience retries and the run completes *)
  Atomic.set hang_release false;
  let releaser =
    Domain.spawn (fun () ->
        Unix.sleepf 0.45;
        Atomic.set hang_release true)
  in
  let cfg : PHang.config =
    {
      ids = [| 1; 2; 3 |];
      inputs = [| (); (); () |];
      namings = Array.init 3 (fun _ -> Naming.identity 1);
      seed = 1;
    }
  in
  (* patience 0.2s with an explicit 4-retry budget: abandonment needs a
     multi-second stall, so even a heavily loaded machine that delays the
     0.45s releaser cannot flip this into a spurious watchdog fire (the
     old default-retry budget left only ~0.35s of slack) *)
  let o =
    PHang.run_decide ~watchdog_s:0.2 ~max_stall_retries:4 ~step_budget:1_000
      cfg
  in
  Domain.join releaser;
  Alcotest.(check bool) "watchdog did not fire" false o.watchdog_fired;
  Alcotest.(check bool) "no domain abandoned" true
    (Array.for_all (fun r -> not r.PHang.timed_out) o.results);
  Alcotest.(check (option int)) "stalled domain recovered and decided"
    (Some 0) o.results.(0).PHang.output;
  Alcotest.(check bool) "the stall consumed retries" true
    (o.results.(0).PHang.stall_retries >= 1);
  Alcotest.(check bool) "healthy peers consumed none" true
    (o.results.(1).PHang.stall_retries = 0
    && o.results.(2).PHang.stall_retries = 0)

let test_stall_retries_bounded () =
  (* a genuinely dead step exhausts the bounded retry budget and still
     ends in the watchdog's partial-outcome path *)
  Atomic.set hang_release false;
  let cfg : PHang.config =
    {
      ids = [| 1; 2; 3 |];
      inputs = [| (); (); () |];
      namings = Array.init 3 (fun _ -> Naming.identity 1);
      seed = 1;
    }
  in
  let o =
    PHang.run_decide ~watchdog_s:0.1 ~max_stall_retries:1 ~step_budget:1_000
      cfg
  in
  let exited = Atomic.get hang_exited in
  Atomic.set hang_release true;
  while Atomic.get hang_exited = exited do
    Domain.cpu_relax ()
  done;
  Alcotest.(check bool) "watchdog fired after bounded retries" true
    o.watchdog_fired;
  Alcotest.(check bool) "dead domain abandoned" true
    o.results.(0).PHang.timed_out;
  Alcotest.(check int) "exactly the granted retries recorded" 1
    o.results.(0).PHang.stall_retries

let test_injected_crash_survivors_decide () =
  let rng = Rng.create 11 in
  let cfg : PCons.config =
    {
      ids = [| 7; 13; 21 |];
      inputs = [| 100; 200; 300 |];
      namings = namings_of rng 3 5;
      seed = 2;
    }
  in
  let faults =
    { PCons.crash_at = [| Some 5; None; None |]; pause_prob = 0.001 }
  in
  let o = PCons.run_decide ~faults cfg in
  Alcotest.(check bool) "victim crashed without deciding" true
    (o.results.(0).PCons.crashed && o.results.(0).PCons.output = None);
  let decided =
    Array.to_list o.results |> List.filter_map (fun r -> r.PCons.output)
  in
  Alcotest.(check bool) "a survivor decided" true (decided <> []);
  (match decided with
  | [] -> ()
  | v :: rest ->
    List.iter (fun w -> Alcotest.(check int) "agreement survives" v w) rest;
    Alcotest.(check bool) "validity survives" true
      (List.mem v [ 100; 200; 300 ]))

(* --- Spsc ring edge cases -------------------------------------------
   The sharded explorer leans on three properties the happy path never
   exercises: a full ring refuses rather than overwrites (backpressure),
   indices stay coherent across the capacity boundary (wraparound), and
   everything a producer published before dying is still poppable by the
   consumer afterwards (the supervised engine drains a dead slot's rings
   before replaying an attempt). *)

let test_spsc_backpressure () =
  let r = Parallel.Spsc.create ~dummy:(-1) 4 in
  for i = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "push %d accepted" i)
      true
      (Parallel.Spsc.try_push r i)
  done;
  Alcotest.(check bool) "full ring refuses" false (Parallel.Spsc.try_push r 99);
  Alcotest.(check bool) "still refuses" false (Parallel.Spsc.try_push r 99);
  Alcotest.(check (option int)) "FIFO head survives the refusals" (Some 0)
    (Parallel.Spsc.try_pop r);
  Alcotest.(check bool)
    "one slot freed, push accepted" true
    (Parallel.Spsc.try_push r 4);
  for i = 1 to 4 do
    Alcotest.(check (option int))
      (Printf.sprintf "drain %d" i)
      (Some i) (Parallel.Spsc.try_pop r)
  done;
  Alcotest.(check bool) "empty again" true (Parallel.Spsc.is_empty r)

let test_spsc_wraparound () =
  (* capacity 3 against 1000 elements: head/tail lap the buffer hundreds
     of times; FIFO order and exactly-once delivery must hold at every
     boundary crossing, including pops interleaved mid-capacity *)
  let cap = 3 in
  let r = Parallel.Spsc.create ~dummy:(-1) cap in
  let next_pop = ref 0 in
  let pushed = ref 0 in
  while !next_pop < 1000 do
    while !pushed < 1000 && Parallel.Spsc.try_push r !pushed do
      incr pushed
    done;
    (match Parallel.Spsc.try_pop r with
    | Some v ->
      Alcotest.(check int) "FIFO across wraparound" !next_pop v;
      incr next_pop
    | None -> Alcotest.fail "ring empty with items outstanding");
    (* leave the ring partially full so the indices cross the capacity
       boundary at every alignment, not just multiples of [cap] *)
    if !next_pop mod 7 = 0 then
      match Parallel.Spsc.try_pop r with
      | Some v ->
        Alcotest.(check int) "FIFO across wraparound" !next_pop v;
        incr next_pop
      | None -> ()
  done;
  Alcotest.(check bool) "drained" true (Parallel.Spsc.is_empty r)

let test_spsc_drain_after_producer_death () =
  let r = Parallel.Spsc.create ~dummy:[||] 8 in
  let accepted = Atomic.make 0 in
  let producer =
    Domain.spawn (fun () ->
        (* publish what fits, then die abruptly — mirroring a killed
           worker with batches already released to a peer's inbox *)
        for i = 0 to 20 do
          if Parallel.Spsc.try_push r [| i; i * i |] then Atomic.incr accepted
        done;
        raise Exit)
  in
  (match Domain.join producer with
  | exception Exit -> ()
  | () -> Alcotest.fail "producer should have died");
  let drained = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    match Parallel.Spsc.try_pop r with
    | Some batch ->
      let i = batch.(0) in
      Alcotest.(check int) "batch intact" (i * i) batch.(1);
      incr drained
    | None -> continue_ := false
  done;
  Alcotest.(check int)
    "every batch the dead producer published is recovered"
    (Atomic.get accepted) !drained;
  Alcotest.(check bool) "inbox empty after the sweep" true
    (Parallel.Spsc.is_empty r)

let suite =
  [
    Alcotest.test_case "spsc: full ring refuses, frees, accepts" `Quick
      test_spsc_backpressure;
    Alcotest.test_case "spsc: wraparound keeps FIFO exactly-once" `Quick
      test_spsc_wraparound;
    Alcotest.test_case "spsc: dead producer's batches drain" `Quick
      test_spsc_drain_after_producer_death;
    Alcotest.test_case "consensus across domains" `Slow test_consensus_domains;
    Alcotest.test_case "renaming across domains" `Slow test_renaming_domains;
    Alcotest.test_case "mutex sessions across domains" `Slow
      test_mutex_domains;
    Alcotest.test_case "choice coordination across domains" `Slow
      test_ccp_domains;
    Alcotest.test_case "final memory snapshot" `Quick
      test_memory_snapshot_consistent;
    Alcotest.test_case "escaped exception degrades gracefully" `Slow
      test_escaped_exception_degrades_gracefully;
    Alcotest.test_case "watchdog returns a partial outcome" `Slow
      test_watchdog_returns_partial_outcome;
    Alcotest.test_case "stalled step recovers via backoff retries" `Slow
      test_stall_retry_recovers;
    Alcotest.test_case "retry budget is bounded" `Slow
      test_stall_retries_bounded;
    Alcotest.test_case "injected crash: survivors decide" `Slow
      test_injected_crash_survivors_decide;
  ]
