open Check

(* Self-healing exploration under injected infrastructure faults. The
   contract: a seeded fault plan is deterministic and replayable; the
   supervised parallel engine absorbs killed worker domains without
   changing the explored graph by a bit; [with_recovery] drives a
   checkpointing exploration through supervisor kills, allocation
   failures and torn snapshot writes to the exact fault-free result. *)

module P = Coord.Amutex.P
module E = Explore.Make (P)

let cfg () = E.config ~m:3 ~ids:[ 7; 13 ] ~inputs:[ (); () ] ()

let tmp_snap name = Filename.temp_file ("coordres-" ^ name) ".snap"

let with_plan plan f =
  Resilience.arm plan;
  Fun.protect ~finally:Resilience.disarm f

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let check_graph tag (a : E.graph) (b : E.graph) =
  Alcotest.(check bool) (tag ^ ": same states") true (a.E.states = b.E.states);
  Alcotest.(check bool) (tag ^ ": same orbits") true (a.E.orbits = b.E.orbits);
  Alcotest.(check bool) (tag ^ ": same succs") true (a.E.succs = b.E.succs);
  Alcotest.(check bool)
    (tag ^ ": same completeness")
    true
    (a.E.complete = b.E.complete)

let check_stats tag a b =
  Alcotest.(check bool)
    (tag ^ ": stats bit-identical (mod clock)")
    true
    (Checker_stats.equal_ignoring_time a b)

(* ------------------------- plans are data ----------------------------- *)

let test_plan_determinism () =
  let p1 = Resilience.plan_of_seed ~domains:4 ~intensity:6 42 in
  let p2 = Resilience.plan_of_seed ~domains:4 ~intensity:6 42 in
  Alcotest.(check bool) "same seed, same plan" true (p1 = p2);
  Alcotest.(check int) "intensity honored" 6 (List.length p1.Resilience.faults);
  let p3 = Resilience.plan_of_seed ~domains:4 ~intensity:6 43 in
  Alcotest.(check bool) "different seed, different plan" false (p1 = p3);
  let rendered = Format.asprintf "%a" Resilience.pp_plan p1 in
  Alcotest.(check bool) "pp names the seed" true
    (contains ~affix:"(seed 42)" rendered)

(* ---------------------- injection-point semantics --------------------- *)

let test_fire_accounting () =
  Alcotest.(check bool) "disarmed" false (Resilience.armed ());
  (* disarmed injection points are no-ops *)
  Resilience.worker_tick ~domain:0;
  Resilience.boundary_tick ();
  Alcotest.(check bool) "no phantom writes" true
    (Resilience.mutate_write "payload" = None);
  let plan =
    {
      Resilience.seed = 0;
      faults =
        [
          Resilience.Kill_domain { domain = 1; after_ticks = 2 };
          Resilience.Alloc_fail { after_boundaries = 1 };
        ];
    }
  in
  with_plan plan (fun () ->
      Alcotest.(check bool) "armed" true (Resilience.armed ());
      Alcotest.(check bool) "domain faults pending" true
        (Resilience.has_domain_faults ());
      (* tick 1: not yet matured; other domains unaffected *)
      Resilience.worker_tick ~domain:1;
      Resilience.worker_tick ~domain:0;
      Alcotest.(check int) "nothing fired yet" 0 (Resilience.fired ());
      (match Resilience.worker_tick ~domain:1 with
      | exception Resilience.Killed { domain = 1 } -> ()
      | exception e ->
        Alcotest.failf "expected Killed d1, got %s" (Printexc.to_string e)
      | () -> Alcotest.fail "kill did not fire at its tick");
      Alcotest.(check int) "kill fired once" 1 (Resilience.fired ());
      (* faults fire at most once *)
      Resilience.worker_tick ~domain:1;
      Alcotest.(check bool) "kill consumed" false
        (Resilience.has_domain_faults ());
      (match Resilience.boundary_tick () with
      | exception Out_of_memory -> ()
      | () -> Alcotest.fail "alloc fault did not fire");
      Alcotest.(check int) "both fired" 2 (Resilience.fired ());
      Alcotest.(check bool) "nothing pending" true (Resilience.pending () = []));
  Alcotest.(check bool) "disarmed again" false (Resilience.armed ())

(* [stall_tick] is the kill-free seam Prun uses: it must serve stalls but
   neither fire nor consume kill faults aimed at the explorer. *)
let test_stall_tick_ignores_kills () =
  let plan =
    {
      Resilience.seed = 0;
      faults =
        [
          Resilience.Kill_domain { domain = 0; after_ticks = 1 };
          Resilience.Stall_domain
            { domain = 0; after_ticks = 1; for_s = 0.001 };
        ];
    }
  in
  with_plan plan (fun () ->
      Resilience.stall_tick ~domain:0;
      (* the stall fired (slept), the kill did not and is still pending *)
      Alcotest.(check int) "stall fired" 1 (Resilience.fired ());
      Alcotest.(check bool) "kill survives stall_tick" true
        (List.exists
           (function Resilience.Kill_domain _ -> true | _ -> false)
           (Resilience.pending ())))

let test_mutate_write () =
  let payload = String.init 100 (fun i -> Char.chr (i land 0xff)) in
  let plan =
    {
      Resilience.seed = 0;
      faults =
        [
          Resilience.Torn_write { nth_write = 2; keep = 0.5 };
          Resilience.Flip_byte { nth_write = 3; at = 0.5 };
        ];
    }
  in
  with_plan plan (fun () ->
      Alcotest.(check bool) "write 1 unharmed" true
        (Resilience.mutate_write payload = None);
      (match Resilience.mutate_write payload with
      | Some torn ->
        Alcotest.(check int) "write 2 torn to half" 50 (String.length torn);
        Alcotest.(check string) "torn prefix preserved"
          (String.sub payload 0 50) torn
      | None -> Alcotest.fail "torn write did not fire");
      (match Resilience.mutate_write payload with
      | Some flipped ->
        Alcotest.(check int) "flip keeps length" 100 (String.length flipped);
        let diffs = ref 0 in
        String.iteri
          (fun i c -> if c <> payload.[i] then incr diffs)
          flipped;
        Alcotest.(check int) "exactly one byte flipped" 1 !diffs
      | None -> Alcotest.fail "flip did not fire");
      Alcotest.(check bool) "write 4 unharmed" true
        (Resilience.mutate_write payload = None))

(* --------------------- supervised engine identity --------------------- *)

(* With no faults armed, the supervised engine must be indistinguishable
   from the barrier engine: same graph, same stats, both reductions. *)
let test_supervised_bit_identity () =
  List.iter
    (fun (rname, reduction) ->
      let c = cfg () in
      let og, os = E.explore_par ~domains:3 ~par_threshold:2 ~reduction c in
      let sg, ss =
        E.explore_par ~domains:3 ~par_threshold:2 ~reduction ~supervise:true c
      in
      check_graph ("supervised/" ^ rname) og sg;
      check_stats ("supervised/" ^ rname) os ss;
      Alcotest.(check int)
        (rname ^ ": no restarts without faults")
        0 ss.Checker_stats.restarts)
    [ ("full", Explore.Full); ("canon", Explore.Canon) ]

(* Kill worker domains mid-generation: the supervision layer requeues
   their units and respawns them; the result must not change by a bit. *)
let test_supervised_absorbs_kills () =
  let c = cfg () in
  let og, os = E.explore_par ~domains:3 ~par_threshold:2 c in
  let plan =
    {
      Resilience.seed = 1;
      faults =
        [
          Resilience.Kill_domain { domain = 1; after_ticks = 1 };
          Resilience.Kill_domain { domain = 2; after_ticks = 3 };
          Resilience.Kill_domain { domain = 1; after_ticks = 9 };
        ];
    }
  in
  with_plan plan (fun () ->
      (* supervision defaults on because domain faults are armed *)
      let sg, ss = E.explore_par ~domains:3 ~par_threshold:2 c in
      Alcotest.(check bool) "kills fired" true (Resilience.fired () >= 1);
      check_graph "killed workers" og sg;
      check_stats "killed workers" os ss)

(* ------------------------- with_recovery ------------------------------ *)

(* A kill aimed at domain 0 takes down the whole attempt (there is no
   outer supervisor for the supervisor); with_recovery must pick the run
   back up from its periodic snapshots and land on the oracle. *)
let test_recovery_from_supervisor_kill () =
  let c = cfg () in
  let og, os = E.explore_with_stats c in
  let snap = tmp_snap "kill0" in
  let plan =
    {
      Resilience.seed = 2;
      faults = [ Resilience.Kill_domain { domain = 0; after_ticks = 6 } ];
    }
  in
  with_plan plan (fun () ->
      let rg, rs =
        E.with_recovery ~snapshot_to:snap (fun ~resume_from ~snapshot_to ->
            E.explore_with_stats ~snapshot_every:1 ~snapshot_to ?resume_from
              ~salvage:true c)
      in
      Alcotest.(check int) "the kill fired" 1 (Resilience.fired ());
      check_graph "recovered from supervisor kill" og rg;
      check_stats "recovered from supervisor kill" os rs);
  Sys.remove snap

(* Injected allocation failure: the engine degrades to a flushed snapshot
   and an Oom-truncated result; with_recovery resumes it to completion. *)
let test_recovery_from_alloc_fail () =
  let c = cfg () in
  let og, os = E.explore_with_stats c in
  let snap = tmp_snap "alloc" in
  let plan =
    {
      Resilience.seed = 3;
      faults = [ Resilience.Alloc_fail { after_boundaries = 3 } ];
    }
  in
  with_plan plan (fun () ->
      (* first, watch the degradation itself *)
      let tg, ts =
        E.explore_with_stats ~snapshot_every:1 ~snapshot_to:snap c
      in
      Alcotest.(check bool) "degraded, not crashed" false tg.E.complete;
      Alcotest.(check bool) "stop reason is oom" true
        (ts.Checker_stats.stop = Checker_stats.Oom);
      (* the fault is consumed; recovery resumes to the oracle *)
      let rg, rs =
        E.with_recovery ~resume_from:snap ~snapshot_to:snap
          (fun ~resume_from ~snapshot_to ->
            E.explore_with_stats ~snapshot_every:1 ~snapshot_to ?resume_from
              ~salvage:true c)
      in
      check_graph "recovered from alloc failure" og rg;
      check_stats "recovered from alloc failure" os rs);
  Sys.remove snap

(* with_recovery end to end under one plan: the Oom-truncated RESULT
   (not exception) path must also trigger a retry. *)
let test_recovery_retries_truncated_result () =
  let c = cfg () in
  let og, _ = E.explore_with_stats c in
  let snap = tmp_snap "oomres" in
  let plan =
    {
      Resilience.seed = 4;
      faults = [ Resilience.Alloc_fail { after_boundaries = 2 } ];
    }
  in
  with_plan plan (fun () ->
      let attempts = ref 0 in
      let rg, _ =
        E.with_recovery ~snapshot_to:snap (fun ~resume_from ~snapshot_to ->
            incr attempts;
            E.explore_with_stats ~snapshot_every:1 ~snapshot_to ?resume_from
              ~salvage:true c)
      in
      Alcotest.(check int) "one retry after the degradation" 2 !attempts;
      check_graph "converged" og rg);
  Sys.remove snap

(* Torn snapshot write mid-campaign: the live run must not care (damage
   goes to disk, not memory), and a salvaged resume of whatever the file
   ended up as must still land on the oracle. *)
let test_torn_write_salvage () =
  let c = cfg () in
  let og, os = E.explore_with_stats c in
  let total = os.Checker_stats.n_states in
  let snap = tmp_snap "torn" in
  let plan =
    {
      Resilience.seed = 5;
      faults = [ Resilience.Torn_write { nth_write = 2; keep = 0.3 } ];
    }
  in
  with_plan plan (fun () ->
      let tg, _ =
        E.explore_with_stats
          ~max_states:(max 2 (total / 2))
          ~snapshot_every:1 ~snapshot_to:snap c
      in
      Alcotest.(check bool) "live run unharmed by torn write" false
        tg.E.complete;
      Alcotest.(check int) "the tear fired" 1 (Resilience.fired ());
      let rg, rs = E.explore_with_stats ~resume_from:snap ~salvage:true c in
      check_graph "salvaged resume after torn write" og rg;
      check_stats "salvaged resume after torn write" os rs);
  Sys.remove snap

(* ------------------------- disk faults -------------------------------- *)

(* Disk faults join the plan pool only when asked for: old seeds replay
   byte-for-byte, and [~disk:true] plans are deterministic in turn. *)
let test_disk_plan_determinism () =
  let is_disk = function
    | Resilience.Short_write _ | Resilience.Io_error _
    | Resilience.Disk_full _ | Resilience.Fsync_fail _ ->
      true
    | _ -> false
  in
  let p1 = Resilience.plan_of_seed ~intensity:12 42 in
  Alcotest.(check bool) "default plans stay storage-free" false
    (List.exists is_disk p1.Resilience.faults);
  let d1 = Resilience.plan_of_seed ~intensity:12 ~disk:true 42 in
  let d2 = Resilience.plan_of_seed ~intensity:12 ~disk:true 42 in
  Alcotest.(check bool) "same seed, same disk plan" true (d1 = d2);
  Alcotest.(check bool) "disk pool actually drawn from" true
    (List.exists is_disk d1.Resilience.faults)

(* Unit semantics of the storage injection points: short writes truncate,
   EIO and ENOSPC raise typed faults, fsync failures raise, and each
   fault fires exactly once at its scheduled operation. *)
let test_disk_injection_points () =
  let payload = String.make 64 'x' in
  let plan =
    {
      Resilience.seed = 0;
      faults =
        [
          Resilience.Short_write { nth_io = 1; keep = 0.25 };
          Resilience.Io_error { nth_io = 2 };
          Resilience.Fsync_fail { nth_sync = 2 };
          Resilience.Disk_full { after_bytes = 200 };
        ];
    }
  in
  with_plan plan (fun () ->
      Alcotest.(check bool) "disk faults pending" true
        (Resilience.has_disk_faults ());
      Alcotest.(check int) "io 1 truncated to a quarter" 16
        (String.length (Resilience.io_write payload));
      (match Resilience.io_write payload with
      | exception Resilience.Io_fault { op } ->
        Alcotest.(check bool) "EIO names the op" true
          (contains ~affix:"input/output error" op)
      | _ -> Alcotest.fail "EIO did not fire at io 2");
      (* io 3: 192 bytes offered so far, quota 200 still holds *)
      Alcotest.(check int) "io 3 unharmed" 64
        (String.length (Resilience.io_write payload));
      (* io 4 pushes cumulative bytes past 200: ENOSPC *)
      (match Resilience.io_write payload with
      | exception Resilience.Io_fault { op } ->
        Alcotest.(check bool) "ENOSPC names the op" true
          (contains ~affix:"no space left" op)
      | _ -> Alcotest.fail "ENOSPC did not fire");
      Resilience.io_sync ();
      (match Resilience.io_sync () with
      | exception Resilience.Io_fault { op } ->
        Alcotest.(check bool) "fsync failure names the op" true
          (contains ~affix:"fsync" op)
      | () -> Alcotest.fail "fsync fault did not fire at sync 2");
      Alcotest.(check int) "all four fired" 4 (Resilience.fired ());
      Alcotest.(check bool) "nothing pending" false
        (Resilience.has_disk_faults ());
      (* consumed faults leave the seams transparent *)
      Alcotest.(check int) "io 5 unharmed" 64
        (String.length (Resilience.io_write payload));
      Resilience.io_sync ())

(* An EIO thrown mid-snapshot is transient (injected faults fire once);
   with_recovery must retry through it to the oracle and stamp the
   retry into [recoveries] for dashboards. *)
let test_recovery_from_io_error () =
  let c = cfg () in
  let og, os = E.explore_with_stats c in
  let snap = tmp_snap "eio" in
  let plan =
    {
      Resilience.seed = 6;
      faults =
        [
          Resilience.Io_error { nth_io = 2 };
          Resilience.Fsync_fail { nth_sync = 3 };
        ];
    }
  in
  with_plan plan (fun () ->
      let rg, rs =
        E.with_recovery ~snapshot_to:snap (fun ~resume_from ~snapshot_to ->
            E.explore_with_stats ~snapshot_every:1 ~snapshot_to ?resume_from
              ~salvage:true c)
      in
      Alcotest.(check bool) "io faults fired" true (Resilience.fired () >= 1);
      check_graph "recovered from EIO" og rg;
      Alcotest.(check bool)
        "stats bit-identical (mod clock, mod recovery count)"
        true
        (Checker_stats.equal_ignoring_time os
           { rs with Checker_stats.recoveries = 0 });
      Alcotest.(check bool) "retries stamped as recoveries" true
        (rs.Checker_stats.recoveries >= 1);
      Alcotest.(check bool) "recoveries visible in json" true
        (contains ~affix:"\"recoveries\"" (Checker_stats.to_json rs)));
  Sys.remove snap

(* A short write damages snapshot bytes without raising; the CRC layer
   must flag the chunk and salvage must still land on the oracle. *)
let test_short_write_salvage () =
  let c = cfg () in
  let og, os = E.explore_with_stats c in
  let total = os.Checker_stats.n_states in
  let snap = tmp_snap "shortw" in
  let plan =
    {
      Resilience.seed = 7;
      faults = [ Resilience.Short_write { nth_io = 2; keep = 0.4 } ];
    }
  in
  with_plan plan (fun () ->
      let tg, _ =
        E.explore_with_stats
          ~max_states:(max 2 (total / 2))
          ~snapshot_every:1 ~snapshot_to:snap c
      in
      Alcotest.(check bool) "live run unharmed by short write" false
        tg.E.complete;
      Alcotest.(check int) "the short write fired" 1 (Resilience.fired ());
      let rg, rs = E.explore_with_stats ~resume_from:snap ~salvage:true c in
      check_graph "salvaged resume after short write" og rg;
      check_stats "salvaged resume after short write" os rs);
  Sys.remove snap

(* --------------------------- deadlines -------------------------------- *)

let test_deadline_stops_and_resumes () =
  let c = cfg () in
  let og, os = E.explore_with_stats c in
  let snap = tmp_snap "deadline" in
  (* an already-expired deadline stops at the first generation boundary *)
  let dg, ds = E.explore_with_stats ~deadline_s:0.0 ~snapshot_to:snap c in
  Alcotest.(check bool) "deadline truncates" false dg.E.complete;
  Alcotest.(check bool) "stop reason is deadline" true
    (ds.Checker_stats.stop = Checker_stats.Deadline);
  Alcotest.(check bool) "made some progress first" true
    (ds.Checker_stats.n_states >= 1);
  Alcotest.(check bool) "snapshot flushed" true (Sys.file_exists snap);
  (* a resumed run with a fresh (generous) deadline completes *)
  let rg, rs = E.explore_with_stats ~deadline_s:3600.0 ~resume_from:snap c in
  check_graph "resume after deadline" og rg;
  check_stats "resume after deadline" os rs;
  (* json carries the reason for dashboards *)
  Alcotest.(check bool) "stop tag in json" true
    (contains ~affix:"\"deadline\"" (Checker_stats.to_json ds));
  Sys.remove snap

let suite =
  [
    Alcotest.test_case "fault plans are deterministic" `Quick
      test_plan_determinism;
    Alcotest.test_case "fire-once accounting" `Quick test_fire_accounting;
    Alcotest.test_case "stall_tick leaves kills alone" `Quick
      test_stall_tick_ignores_kills;
    Alcotest.test_case "mutate_write damages the right write" `Quick
      test_mutate_write;
    Alcotest.test_case "supervised engine: bit-identical, no faults" `Slow
      test_supervised_bit_identity;
    Alcotest.test_case "supervised engine absorbs worker kills" `Slow
      test_supervised_absorbs_kills;
    Alcotest.test_case "with_recovery: supervisor kill" `Quick
      test_recovery_from_supervisor_kill;
    Alcotest.test_case "with_recovery: allocation failure" `Quick
      test_recovery_from_alloc_fail;
    Alcotest.test_case "with_recovery: retries truncated result" `Quick
      test_recovery_retries_truncated_result;
    Alcotest.test_case "torn snapshot write salvaged" `Quick
      test_torn_write_salvage;
    Alcotest.test_case "disk plans are deterministic and opt-in" `Quick
      test_disk_plan_determinism;
    Alcotest.test_case "disk injection-point semantics" `Quick
      test_disk_injection_points;
    Alcotest.test_case "with_recovery: EIO and fsync failure" `Quick
      test_recovery_from_io_error;
    Alcotest.test_case "short snapshot write salvaged" `Quick
      test_short_write_salvage;
    Alcotest.test_case "deadline stops gracefully, resume completes" `Quick
      test_deadline_stops_and_resumes;
  ]
