open Anonmem

let test_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.next_int64 a <> Rng.next_int64 b then differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_copy_replays () =
  let a = Rng.create 7 in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.next_int64 a) (Rng.next_int64 b)

let test_assign () =
  let a = Rng.create 7 and b = Rng.create 9 in
  ignore (Rng.next_int64 a);
  Rng.assign b a;
  Alcotest.(check int64) "assign syncs" (Rng.next_int64 a) (Rng.next_int64 b)

let test_split_independent () =
  let a = Rng.create 11 in
  let b = Rng.split a in
  (* not a statistical test; just that both advance and differ *)
  let xa = Rng.next_int64 a and xb = Rng.next_int64 b in
  Alcotest.(check bool) "split streams differ" true (xa <> xb)

let test_int_bounds () =
  let g = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.int g 7 in
    Alcotest.(check bool) "in [0,7)" true (0 <= x && x < 7)
  done

let test_int_covers () =
  let g = Rng.create 5 in
  let seen = Array.make 4 false in
  for _ = 1 to 200 do
    seen.(Rng.int g 4) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_int_chi_square () =
  (* uniformity sanity check: 70k draws over 7 buckets. With a fair
     generator the statistic is chi-square distributed with 6 degrees of
     freedom (99.9th percentile ~ 22.5); the seed is fixed, so this is a
     deterministic regression test, not a flaky statistical one. The old
     [r mod bound] implementation was modulo-biased; rejection sampling
     makes every residue exactly equally likely. *)
  let g = Rng.create 2017 in
  let bound = 7 in
  let draws = 70_000 in
  let counts = Array.make bound 0 in
  for _ = 1 to draws do
    let x = Rng.int g bound in
    counts.(x) <- counts.(x) + 1
  done;
  let expected = float_of_int draws /. float_of_int bound in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0. counts
  in
  Alcotest.(check bool)
    (Printf.sprintf "chi-square %.2f below 22.5" chi2)
    true (chi2 < 22.5)

let test_int_huge_bound_rejects () =
  (* bound ~ 2^61: about half of all raw draws fall in the rejected zone,
     so this exercises the rejection loop; results must stay in range and
     have mean ~ bound/2 (the old modulo fold-over skewed the mean toward
     0.375 * bound, which this tolerance catches). *)
  let g = Rng.create 31 in
  let bound = (max_int / 2) + 2 in
  let draws = 10_000 in
  let sum = ref 0. in
  for _ = 1 to draws do
    let x = Rng.int g bound in
    Alcotest.(check bool) "in range" true (0 <= x && x < bound);
    sum := !sum +. (float_of_int x /. float_of_int bound)
  done;
  let mean = !sum /. float_of_int draws in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f near 0.5" mean)
    true (mean > 0.48 && mean < 0.52)

let test_float_range () =
  let g = Rng.create 9 in
  for _ = 1 to 1000 do
    let x = Rng.float g in
    Alcotest.(check bool) "in [0,1)" true (0. <= x && x < 1.)
  done

let test_bool_balanced () =
  let g = Rng.create 13 in
  let heads = ref 0 in
  for _ = 1 to 1000 do
    if Rng.bool g then incr heads
  done;
  Alcotest.(check bool) "roughly balanced" true (!heads > 400 && !heads < 600)

let test_permutation_valid () =
  let g = Rng.create 17 in
  for n = 1 to 10 do
    let p = Rng.permutation g n in
    let sorted = Array.copy p in
    Array.sort compare sorted;
    Alcotest.(check (array int))
      "is a permutation"
      (Array.init n Fun.id)
      sorted
  done

let test_pick_member () =
  let g = Rng.create 19 in
  let a = [| 3; 1; 4; 1; 5 |] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "pick from array" true (Array.mem (Rng.pick g a) a)
  done

let test_shuffle_permutes () =
  let g = Rng.create 23 in
  let a = Array.init 20 Fun.id in
  Rng.shuffle_in_place g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "multiset preserved" (Array.init 20 Fun.id) sorted

let suite =
  [
    Alcotest.test_case "same seed, same stream" `Quick test_deterministic;
    Alcotest.test_case "different seeds differ" `Quick test_seeds_differ;
    Alcotest.test_case "copy replays the future" `Quick test_copy_replays;
    Alcotest.test_case "assign synchronizes state" `Quick test_assign;
    Alcotest.test_case "split gives a distinct stream" `Quick
      test_split_independent;
    Alcotest.test_case "int stays in bounds" `Quick test_int_bounds;
    Alcotest.test_case "int covers all residues" `Quick test_int_covers;
    Alcotest.test_case "int is unbiased (chi-square)" `Quick
      test_int_chi_square;
    Alcotest.test_case "int near max_int exercises rejection" `Quick
      test_int_huge_bound_rejects;
    Alcotest.test_case "float stays in [0,1)" `Quick test_float_range;
    Alcotest.test_case "bool is roughly fair" `Quick test_bool_balanced;
    Alcotest.test_case "permutation is valid" `Quick test_permutation_valid;
    Alcotest.test_case "pick returns a member" `Quick test_pick_member;
    Alcotest.test_case "shuffle preserves elements" `Quick
      test_shuffle_permutes;
  ]
