open Anonmem

(* A toy protocol: write your id to local register 0, read it back, decide
   what you read. Exercises the runtime without algorithmic noise. *)
module Toy = struct
  module Value = struct
    type t = int

    let init = 0
    let equal = Int.equal
    let compare = Int.compare
    let pp = Format.pp_print_int
  end

  type input = unit
  type output = int
  type local = Rem | Put | Get | Fin of int

  let name = "toy"
  let default_registers ~n:_ = 2
  let start ~n:_ ~m:_ ~id:_ () = Rem

  let step ~n:_ ~m:_ ~id local : (local, Value.t) Protocol.step =
    match local with
    | Rem -> Internal Put
    | Put -> Write (0, id, Get)
    | Get -> Read (0, fun v -> Fin v)
    | Fin _ -> invalid_arg "toy: decided"

  let status = function
    | Rem -> Protocol.Remainder
    | Put | Get -> Protocol.Trying
    | Fin v -> Protocol.Decided v

  let compare_local = Stdlib.compare
  let symmetric = false
  let map_value_ids _ v = v
  let map_local_ids _ l = l
  let pp_local ppf _ = Format.pp_print_string ppf "<toy>"
  let pp_input ppf () = Format.pp_print_string ppf "()"
  let pp_output = Format.pp_print_int
end

module R = Runtime.Make (Toy)

let mk ?(ids = [ 5; 9 ]) ?m () =
  R.create (R.simple_config ?m ~record_trace:true ~ids
              ~inputs:(List.map (fun _ -> ()) ids) ())

let test_create_validates () =
  let bad ids = fun () -> ignore (mk ~ids ()) in
  Alcotest.check_raises "duplicate ids"
    (Invalid_argument "Runtime.create: duplicate ids")
    (bad [ 3; 3 ]);
  Alcotest.check_raises "non-positive ids"
    (Invalid_argument "Runtime.create: ids must be positive")
    (bad [ 0; 1 ])

let test_initial_state () =
  let rt = mk () in
  Alcotest.(check int) "n" 2 (R.n rt);
  Alcotest.(check int) "m" 2 (R.m rt);
  Alcotest.(check int) "clock" 0 (R.clock rt);
  Alcotest.(check int) "id of proc 1" 9 (R.id_of rt 1);
  Alcotest.(check bool) "remainder" true (R.status rt 0 = Protocol.Remainder);
  Alcotest.(check bool) "kind idle" true (R.kind rt 0 = Schedule.Idle)

let test_step_and_decide () =
  let rt = mk () in
  ignore (R.step rt 0);
  (* internal *)
  ignore (R.step rt 0);
  (* write 5 *)
  ignore (R.step rt 0);
  (* read 5, decide *)
  (match R.status rt 0 with
  | Protocol.Decided v -> Alcotest.(check int) "decided own id" 5 v
  | _ -> Alcotest.fail "expected decided");
  Alcotest.(check int) "three steps" 3 (R.steps_of rt 0);
  Alcotest.check_raises "stepping decided process rejected"
    (Invalid_argument "Runtime.step: process already decided") (fun () ->
      ignore (R.step rt 0))

let test_interference () =
  (* p0 writes, p1 overwrites, p0 reads p1's id *)
  let rt = mk () in
  ignore (R.step rt 0);
  ignore (R.step rt 0);
  (* p0 wrote 5 *)
  ignore (R.step rt 1);
  ignore (R.step rt 1);
  (* p1 wrote 9 over it *)
  ignore (R.step rt 0);
  (match R.status rt 0 with
  | Protocol.Decided v -> Alcotest.(check int) "p0 sees p1's write" 9 v
  | _ -> Alcotest.fail "expected decided")

let test_trace_records () =
  let rt = mk () in
  ignore (R.step rt 0);
  ignore (R.step rt 0);
  ignore (R.step rt 0);
  let trace = R.trace rt in
  Alcotest.(check int) "three entries" 3 (List.length trace);
  match trace with
  | [ a; b; c ] ->
    Alcotest.(check bool) "internal first" true (a.Trace.action = Internal);
    (match b.Trace.action with
    | Trace.Write { value; phys; _ } ->
      Alcotest.(check int) "wrote id" 5 value;
      Alcotest.(check int) "physical 0" 0 phys
    | _ -> Alcotest.fail "expected write");
    (match Trace.decision c with
    | Some v -> Alcotest.(check int) "decision recorded" 5 v
    | None -> Alcotest.fail "expected decision")
  | _ -> Alcotest.fail "unexpected trace shape"

let test_writes_by () =
  let rt = mk () in
  ignore (R.step rt 0);
  ignore (R.step rt 0);
  ignore (R.step rt 1);
  ignore (R.step rt 1);
  Alcotest.(check (list int)) "p0 wrote physical 0" [ 0 ]
    (Trace.writes_by (R.trace rt) 0);
  Alcotest.(check (list int)) "p1 wrote physical 0" [ 0 ]
    (Trace.writes_by (R.trace rt) 1)

let test_run_all_decided () =
  let rt = mk () in
  let reason = R.run rt (Schedule.round_robin ()) ~max_steps:100 in
  Alcotest.(check bool) "all decided" true (reason = R.All_decided);
  Alcotest.(check bool) "decisions present" true
    (Array.for_all Option.is_some (R.decisions rt))

let test_run_step_limit () =
  let rt = mk () in
  let reason = R.run rt (Schedule.round_robin ()) ~max_steps:2 in
  Alcotest.(check bool) "step limit" true (reason = R.Step_limit)

let test_run_until () =
  let rt = mk () in
  let reason =
    R.run rt
      ~until:(fun t -> R.clock t >= 1)
      (Schedule.round_robin ()) ~max_steps:100
  in
  Alcotest.(check bool) "condition met" true (reason = R.Condition_met);
  Alcotest.(check int) "stopped at once" 1 (R.clock rt)

let test_run_schedule_exhausted () =
  let rt = mk () in
  let reason = R.run rt (Schedule.script [ 0 ]) ~max_steps:100 in
  Alcotest.(check bool) "schedule exhausted" true
    (reason = R.Schedule_exhausted)

let test_checkpoint_restore () =
  let rt = mk () in
  let cp = R.checkpoint rt in
  let _ = R.run rt (Schedule.round_robin ()) ~max_steps:100 in
  Alcotest.(check bool) "ran" true (R.all_decided rt);
  R.restore rt cp;
  Alcotest.(check int) "clock restored" 0 (R.clock rt);
  Alcotest.(check bool) "statuses restored" true
    (R.status rt 0 = Protocol.Remainder);
  Alcotest.(check int) "memory restored" 0
    (R.Mem.get_physical (R.memory rt) 0);
  Alcotest.(check int) "trace restored" 0 (List.length (R.trace rt));
  (* re-running after restore yields the same result *)
  let _ = R.run rt (Schedule.round_robin ()) ~max_steps:100 in
  Alcotest.(check bool) "replays fine" true (R.all_decided rt)

let test_peek_does_not_execute () =
  let rt = mk () in
  ignore (R.step rt 0);
  (match R.peek rt 0 with
  | Protocol.Write (0, 5, _) -> ()
  | _ -> Alcotest.fail "expected pending write of id 5 at local 0");
  Alcotest.(check int) "clock unchanged by peek" 1 (R.clock rt);
  Alcotest.(check int) "memory unchanged by peek" 0
    (R.Mem.get_physical (R.memory rt) 0)

let test_namings_respected () =
  let cfg : R.config =
    {
      ids = [| 5; 9 |];
      inputs = [| (); () |];
      namings = [| Naming.identity 2; Naming.rotation 2 1 |];
      rng = None;
      record_trace = false;
    }
  in
  let rt = R.create cfg in
  (* p1's local 0 is physical 1 *)
  ignore (R.step rt 1);
  ignore (R.step rt 1);
  Alcotest.(check int) "p1's write landed on physical 1" 9
    (R.Mem.get_physical (R.memory rt) 1);
  Alcotest.(check int) "physical 0 untouched" 0
    (R.Mem.get_physical (R.memory rt) 0)

(* A protocol whose single shared access is an Rmw with an observable
   (counting) closure. The closure must run exactly once per step: the
   runtime used to evaluate it twice (once for the register, once for the
   local state), which double-fired any effect and desynced expensive
   closures. *)
let rmw_evaluations = ref 0

module RmwToy = struct
  module Value = Toy.Value

  type input = unit
  type output = int
  type local = Rem | Bump | Fin of int

  let name = "rmw-toy"
  let default_registers ~n:_ = 1
  let start ~n:_ ~m:_ ~id:_ () = Rem

  let step ~n:_ ~m:_ ~id:_ local : (local, Value.t) Protocol.step =
    match local with
    | Rem -> Internal Bump
    | Bump ->
      Rmw
        ( 0,
          fun v ->
            incr rmw_evaluations;
            (v + 1, Fin (v + 1)) )
    | Fin _ -> invalid_arg "rmw-toy: decided"

  let status = function
    | Rem -> Protocol.Remainder
    | Bump -> Protocol.Trying
    | Fin v -> Protocol.Decided v

  let compare_local = Stdlib.compare
  let symmetric = false
  let map_value_ids _ v = v
  let map_local_ids _ l = l
  let pp_local ppf _ = Format.pp_print_string ppf "<rmw-toy>"
  let pp_input ppf () = Format.pp_print_string ppf "()"
  let pp_output = Format.pp_print_int
end

let test_rmw_closure_evaluated_once () =
  let module RR = Runtime.Make (RmwToy) in
  rmw_evaluations := 0;
  let rt = RR.create (RR.simple_config ~m:1 ~ids:[ 3 ] ~inputs:[ () ] ()) in
  ignore (RR.step rt 0);
  let e = RR.step rt 0 in
  Alcotest.(check int) "closure ran exactly once" 1 !rmw_evaluations;
  (match e.Trace.action with
  | Trace.Rmw { old_value; new_value; _ } ->
    Alcotest.(check int) "old" 0 old_value;
    Alcotest.(check int) "new" 1 new_value
  | _ -> Alcotest.fail "expected an rmw action");
  (match RR.status rt 0 with
  | Protocol.Decided v ->
    Alcotest.(check int) "local threaded from the same evaluation" 1 v
  | _ -> Alcotest.fail "expected decided");
  Alcotest.(check int) "register written once" 1
    (RR.Mem.get_physical (RR.memory rt) 0)

(* A protocol that is Critical after one step, to exercise critical_pair
   on states with two or more processes in the CS. *)
module AlwaysCrit = struct
  module Value = Toy.Value

  type input = unit
  type output = int
  type local = Out | In

  let name = "always-crit"
  let default_registers ~n:_ = 1
  let start ~n:_ ~m:_ ~id:_ () = Out

  let step ~n:_ ~m:_ ~id:_ local : (local, Value.t) Protocol.step =
    match local with Out -> Internal In | In -> Internal In

  let status = function Out -> Protocol.Remainder | In -> Protocol.Critical
  let compare_local = Stdlib.compare
  let symmetric = false
  let map_value_ids _ v = v
  let map_local_ids _ l = l
  let pp_local ppf _ = Format.pp_print_string ppf "<crit>"
  let pp_input ppf () = Format.pp_print_string ppf "()"
  let pp_output = Format.pp_print_int
end

let test_critical_pair_ascending () =
  let module RC = Runtime.Make (AlwaysCrit) in
  let rt =
    RC.create (RC.simple_config ~ids:[ 5; 9; 13 ] ~inputs:[ (); (); () ] ())
  in
  Alcotest.(check (option (pair int int))) "no pair initially" None
    (RC.critical_pair rt);
  (* enter the CS in descending index order, so discovery order and index
     order disagree; the pair must still be the two lowest indices,
     ascending *)
  ignore (RC.step rt 2);
  Alcotest.(check (option (pair int int))) "one critical is no pair" None
    (RC.critical_pair rt);
  ignore (RC.step rt 1);
  Alcotest.(check (option (pair int int))) "ascending pair" (Some (1, 2))
    (RC.critical_pair rt);
  ignore (RC.step rt 0);
  Alcotest.(check (option (pair int int))) "lowest two, ascending"
    (Some (0, 1)) (RC.critical_pair rt)

let test_crash_basics () =
  let rt = mk () in
  ignore (R.step rt 0);
  ignore (R.step rt 0);
  (* p0 wrote its id; crash it there: the register must keep the value *)
  R.crash rt 0;
  Alcotest.(check bool) "crashed" true (R.crashed rt 0);
  Alcotest.(check bool) "kind is Crashed" true
    (R.kind rt 0 = Schedule.Crashed);
  Alcotest.(check (list int)) "survivors" [ 1 ] (R.survivors rt);
  Alcotest.(check int) "register keeps the last write" 5
    (R.Mem.get_physical (R.memory rt) 0);
  Alcotest.check_raises "stepping a crashed process rejected"
    (Invalid_argument "Runtime.step: process crashed") (fun () ->
      ignore (R.step rt 0))

let test_crash_decided_rejected () =
  let rt = mk () in
  ignore (R.step rt 0);
  ignore (R.step rt 0);
  ignore (R.step rt 0);
  Alcotest.check_raises "crashing a decided process rejected"
    (Invalid_argument "Runtime.crash: process already decided") (fun () ->
      R.crash rt 0)

let test_run_stops_when_survivors_decide () =
  let rt = mk () in
  R.crash rt 0;
  let reason = R.run rt (Schedule.round_robin ()) ~max_steps:100 in
  Alcotest.(check bool) "all survivors decided" true
    (reason = R.All_decided && R.all_survivors_decided rt);
  Alcotest.(check bool) "but not everyone" false (R.all_decided rt);
  Alcotest.(check bool) "survivor decided" true
    (Protocol.is_decided (R.status rt 1))

let test_rejoin_fresh_state_cumulative_steps () =
  let rt = mk () in
  ignore (R.step rt 0);
  ignore (R.step rt 0);
  R.crash rt 0;
  Alcotest.check_raises "rejoining a live process rejected"
    (Invalid_argument "Runtime.rejoin: process not crashed") (fun () ->
      R.rejoin rt 1);
  R.rejoin rt 0;
  Alcotest.(check bool) "no longer crashed" false (R.crashed rt 0);
  Alcotest.(check bool) "fresh local state" true
    (R.status rt 0 = Protocol.Remainder);
  Alcotest.(check int) "step count survives the crash" 2 (R.steps_of rt 0);
  ignore (R.step rt 0);
  Alcotest.(check int) "and keeps counting" 3 (R.steps_of rt 0);
  (* the recovered process can still finish the protocol *)
  ignore (R.run rt (Schedule.round_robin ()) ~max_steps:100);
  Alcotest.(check bool) "recovered and decided" true (R.all_decided rt)

let test_checkpoint_restores_crashed_set () =
  let rt = mk () in
  ignore (R.step rt 0);
  let cp_live = R.checkpoint rt in
  R.crash rt 0;
  let cp_down = R.checkpoint rt in
  R.restore rt cp_live;
  Alcotest.(check bool) "restored to live" false (R.crashed rt 0);
  ignore (R.step rt 0);
  (* steppable again, and diverging from the checkpoints *)
  R.restore rt cp_down;
  Alcotest.(check bool) "restored to crashed" true (R.crashed rt 0);
  Alcotest.(check int) "steps_of restored with it" 1 (R.steps_of rt 0);
  Alcotest.check_raises "still unsteppable after restore"
    (Invalid_argument "Runtime.step: process crashed") (fun () ->
      ignore (R.step rt 0))

let test_coin_requires_rng () =
  let module RC = Runtime.Make (Coord.Ccp.P) in
  let rt = RC.create (RC.simple_config ~ids:[ 5; 9 ] ~inputs:[ (); () ] ()) in
  ignore (RC.step rt 0);
  (* leave remainder *)
  Alcotest.check_raises "coin without rng rejected"
    (Invalid_argument "Runtime.step: Coin step but no rng in config")
    (fun () -> ignore (RC.step rt 0))

(* RNG-state audit: a checkpoint must capture the coin stream's position,
   so that restore + the same schedule replays a bit-identical trace even
   for randomized protocols. Uses Ccp (the only Coin-flipping protocol)
   warmed past its first coin flips so the RNG is mid-stream when the
   checkpoint is taken. *)
let test_rng_checkpoint_replay () =
  let module RC = Runtime.Make (Coord.Ccp.P) in
  let rt =
    RC.create
      (RC.simple_config ~rng:(Rng.create 77) ~record_trace:true ~ids:[ 5; 9 ]
         ~inputs:[ (); () ] ())
  in
  let run_tail () =
    (* fixed deterministic schedule; stop early so nothing depends on
       termination behaviour *)
    ignore
      (RC.run rt
         ~until:(fun t -> RC.clock t >= 60)
         (Schedule.round_robin ()) ~max_steps:100)
  in
  (* warm up into the coin-flipping region *)
  ignore (RC.run rt ~until:(fun t -> RC.clock t >= 10)
            (Schedule.round_robin ()) ~max_steps:100);
  let coins trace =
    List.filter_map
      (function { Trace.action = Trace.Coin b; _ } -> Some b | _ -> None)
      trace
  in
  let cp = RC.checkpoint rt in
  run_tail ();
  let trace_a = RC.trace rt in
  Alcotest.(check bool) "warm-up flipped at least one coin" true
    (coins trace_a <> []);
  RC.restore rt cp;
  run_tail ();
  let trace_b = RC.trace rt in
  Alcotest.(check int) "same length" (List.length trace_a)
    (List.length trace_b);
  Alcotest.(check bool) "bit-identical trace after restore" true
    (trace_a = trace_b);
  (* and the restored rng keeps diverging correctly: a different schedule
     from the same checkpoint is still internally consistent (coins come
     from the restored stream, not a reset one) *)
  RC.restore rt cp;
  run_tail ();
  Alcotest.(check bool) "third replay still identical" true
    (RC.trace rt = trace_a)

let test_coin_with_rng () =
  let module RC = Runtime.Make (Coord.Ccp.P) in
  let rt =
    RC.create
      (RC.simple_config ~rng:(Rng.create 4) ~record_trace:true ~ids:[ 5 ]
         ~inputs:[ () ] ())
  in
  ignore (RC.step rt 0);
  let e = RC.step rt 0 in
  match e.Trace.action with
  | Trace.Coin _ -> ()
  | _ -> Alcotest.fail "expected a coin action in the trace"

let suite =
  [
    Alcotest.test_case "create validates config" `Quick test_create_validates;
    Alcotest.test_case "coin requires rng" `Quick test_coin_requires_rng;
    Alcotest.test_case "coin with rng recorded" `Quick test_coin_with_rng;
    Alcotest.test_case "rng audit: checkpoint replays coins" `Quick
      test_rng_checkpoint_replay;
    Alcotest.test_case "initial state" `Quick test_initial_state;
    Alcotest.test_case "step and decide" `Quick test_step_and_decide;
    Alcotest.test_case "interference between processes" `Quick
      test_interference;
    Alcotest.test_case "trace records actions" `Quick test_trace_records;
    Alcotest.test_case "writes_by extracts write sets" `Quick test_writes_by;
    Alcotest.test_case "run to completion" `Quick test_run_all_decided;
    Alcotest.test_case "run stops at step limit" `Quick test_run_step_limit;
    Alcotest.test_case "run stops on condition" `Quick test_run_until;
    Alcotest.test_case "run stops when schedule ends" `Quick
      test_run_schedule_exhausted;
    Alcotest.test_case "rmw closure evaluated once" `Quick
      test_rmw_closure_evaluated_once;
    Alcotest.test_case "critical_pair is ascending" `Quick
      test_critical_pair_ascending;
    Alcotest.test_case "checkpoint/restore" `Quick test_checkpoint_restore;
    Alcotest.test_case "crash freezes a process and its registers" `Quick
      test_crash_basics;
    Alcotest.test_case "crash refuses decided processes" `Quick
      test_crash_decided_rejected;
    Alcotest.test_case "run stops when the survivors decide" `Quick
      test_run_stops_when_survivors_decide;
    Alcotest.test_case "rejoin: amnesia, cumulative steps" `Quick
      test_rejoin_fresh_state_cumulative_steps;
    Alcotest.test_case "checkpoint/restore carries the crashed set" `Quick
      test_checkpoint_restores_crashed_set;
    Alcotest.test_case "peek has no effect" `Quick test_peek_does_not_execute;
    Alcotest.test_case "namings respected" `Quick test_namings_respected;
  ]
