open Anonmem

(* Tarjan on known graphs, plus a differential check against a naive
   reachability-based SCC on random digraphs. *)

let scc_of edges n =
  let succs = Array.make n [] in
  List.iter (fun (u, v) -> succs.(u) <- v :: succs.(u)) edges;
  Check.Scc.compute ~n ~succs:(fun v -> succs.(v))

let test_cycle () =
  let scc = scc_of [ (0, 1); (1, 2); (2, 0) ] 3 in
  Alcotest.(check int) "one component" 1 scc.count

let test_chain () =
  let scc = scc_of [ (0, 1); (1, 2) ] 3 in
  Alcotest.(check int) "three singletons" 3 scc.count

let test_two_cycles () =
  let scc = scc_of [ (0, 1); (1, 0); (2, 3); (3, 2); (1, 2) ] 4 in
  Alcotest.(check int) "two components" 2 scc.count;
  Alcotest.(check bool) "0 and 1 together" true
    (scc.component.(0) = scc.component.(1));
  Alcotest.(check bool) "2 and 3 together" true
    (scc.component.(2) = scc.component.(3));
  Alcotest.(check bool) "0 and 2 apart" true
    (scc.component.(0) <> scc.component.(2));
  (* sinks are numbered first: edge across components goes high -> low *)
  Alcotest.(check bool) "topological numbering" true
    (scc.component.(0) > scc.component.(2))

let test_self_loop () =
  let scc = scc_of [ (0, 0) ] 2 in
  Alcotest.(check int) "two components" 2 scc.count

let test_components_listing () =
  let scc = scc_of [ (0, 1); (1, 0) ] 3 in
  let comps = Check.Scc.components scc in
  let sizes = Array.to_list comps |> List.map List.length |> List.sort compare in
  Alcotest.(check (list int)) "sizes" [ 1; 2 ] sizes

let test_large_path () =
  (* a long path must not blow the stack: 200k vertices *)
  let n = 200_000 in
  let scc =
    Check.Scc.compute ~n ~succs:(fun v -> if v + 1 < n then [ v + 1 ] else [])
  in
  Alcotest.(check int) "all singletons" n scc.count

(* O(n^3) reference: v and w share a component iff each reaches the other. *)
let naive_same_component n succs =
  let reach = Array.make_matrix n n false in
  for v = 0 to n - 1 do
    reach.(v).(v) <- true;
    List.iter (fun w -> reach.(v).(w) <- true) (succs v)
  done;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if reach.(i).(k) && reach.(k).(j) then reach.(i).(j) <- true
      done
    done
  done;
  fun v w -> reach.(v).(w) && reach.(w).(v)

let test_random_differential () =
  let rng = Rng.create 2024 in
  for _trial = 1 to 50 do
    let n = 2 + Rng.int rng 14 in
    let n_edges = Rng.int rng (2 * n) in
    let succs = Array.make n [] in
    for _ = 1 to n_edges do
      let u = Rng.int rng n and v = Rng.int rng n in
      succs.(u) <- v :: succs.(u)
    done;
    let succs v = succs.(v) in
    let scc = Check.Scc.compute ~n ~succs in
    let same = naive_same_component n succs in
    for v = 0 to n - 1 do
      for w = 0 to n - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "partition agrees on (%d, %d)" v w)
          (same v w)
          (scc.component.(v) = scc.component.(w))
      done
    done;
    (* count must equal the number of distinct component ids, all in range *)
    let ids = List.sort_uniq compare (Array.to_list scc.component) in
    Alcotest.(check int) "count matches distinct ids" scc.count
      (List.length ids);
    List.iter
      (fun id ->
        Alcotest.(check bool) "id in range" true (id >= 0 && id < scc.count))
      ids
  done

let suite =
  [
    Alcotest.test_case "single cycle" `Quick test_cycle;
    Alcotest.test_case "chain" `Quick test_chain;
    Alcotest.test_case "two cycles" `Quick test_two_cycles;
    Alcotest.test_case "self loop" `Quick test_self_loop;
    Alcotest.test_case "components listing" `Quick test_components_listing;
    Alcotest.test_case "deep path (no stack overflow)" `Quick test_large_path;
    Alcotest.test_case "random graphs vs naive reachability" `Quick
      test_random_differential;
  ]
