open Anonmem

let view kinds : Schedule.view =
  { n = Array.length kinds; clock = 0; kind = (fun i -> kinds.(i)) }

let working n = view (Array.make n Schedule.Working)

let test_round_robin_cycles () =
  let s = Schedule.round_robin () in
  let v = working 3 in
  let picks = List.init 6 (fun _ -> Option.get (s v)) in
  Alcotest.(check (list int)) "cycles" [ 0; 1; 2; 0; 1; 2 ] picks

let test_round_robin_skips_finished () =
  let s = Schedule.round_robin () in
  let v = view [| Schedule.Working; Finished; Working |] in
  let picks = List.init 4 (fun _ -> Option.get (s v)) in
  Alcotest.(check (list int)) "skips 1" [ 0; 2; 0; 2 ] picks

let test_round_robin_stops () =
  let s = Schedule.round_robin () in
  let v = view [| Schedule.Finished; Finished |] in
  Alcotest.(check bool) "all finished -> None" true (s v = None)

let test_solo () =
  let s = Schedule.solo 1 in
  let v = working 3 in
  Alcotest.(check (option int)) "always 1" (Some 1) (s v);
  Alcotest.(check (option int)) "still 1" (Some 1) (s v);
  let v' = view [| Schedule.Working; Finished; Working |] in
  Alcotest.(check (option int)) "stops when finished" None (s v')

let test_lock_step () =
  let s = Schedule.lock_step [ 2; 0 ] in
  let v = working 3 in
  let picks = List.init 4 (fun _ -> Option.get (s v)) in
  Alcotest.(check (list int)) "cycles the given list" [ 2; 0; 2; 0 ] picks

let test_lock_step_stops_on_finish () =
  let s = Schedule.lock_step [ 0; 1 ] in
  let v = view [| Schedule.Working; Finished |] in
  Alcotest.(check (option int)) "first pick ok" (Some 0) (s v);
  Alcotest.(check (option int)) "stops at finished member" None (s v)

let test_script () =
  let s = Schedule.script [ 1; 1; 0 ] in
  let v = working 2 in
  Alcotest.(check (option int)) "1" (Some 1) (s v);
  Alcotest.(check (option int)) "1" (Some 1) (s v);
  Alcotest.(check (option int)) "0" (Some 0) (s v);
  Alcotest.(check (option int)) "exhausted" None (s v)

let test_script_skips_finished () =
  let s = Schedule.script [ 1; 0 ] in
  let v = view [| Schedule.Working; Finished |] in
  Alcotest.(check (option int)) "skips finished 1, picks 0" (Some 0) (s v)

let test_random_only_unfinished () =
  let rng = Rng.create 5 in
  let s = Schedule.random rng in
  let v = view [| Schedule.Finished; Idle; Working |] in
  for _ = 1 to 50 do
    match s v with
    | Some i -> Alcotest.(check bool) "never finished" true (i = 1 || i = 2)
    | None -> Alcotest.fail "should pick someone"
  done

let test_random_active_excludes_idle () =
  let rng = Rng.create 6 in
  let s = Schedule.random_active rng in
  let v = view [| Schedule.Idle; Working; Crit |] in
  for _ = 1 to 50 do
    match s v with
    | Some i -> Alcotest.(check bool) "active only" true (i = 1 || i = 2)
    | None -> Alcotest.fail "should pick someone"
  done;
  let v' = view [| Schedule.Idle; Idle |] in
  Alcotest.(check (option int)) "no active -> None" None (s v')

let test_then_ () =
  let s = Schedule.then_ (Schedule.script [ 0 ]) (Schedule.solo 1) in
  let v = working 2 in
  Alcotest.(check (option int)) "first scheduler" (Some 0) (s v);
  Alcotest.(check (option int)) "falls through" (Some 1) (s v);
  Alcotest.(check (option int)) "stays on second" (Some 1) (s v)

let test_take () =
  let s = Schedule.take 2 (Schedule.solo 0) in
  let v = working 1 in
  Alcotest.(check (option int)) "one" (Some 0) (s v);
  Alcotest.(check (option int)) "two" (Some 0) (s v);
  Alcotest.(check (option int)) "capped" None (s v)

let test_runnable_predicate () =
  Alcotest.(check bool) "idle runs" true (Schedule.runnable Schedule.Idle);
  Alcotest.(check bool) "working runs" true
    (Schedule.runnable Schedule.Working);
  Alcotest.(check bool) "crit runs" true (Schedule.runnable Schedule.Crit);
  Alcotest.(check bool) "exiting runs" true (Schedule.runnable Schedule.Exitg);
  Alcotest.(check bool) "finished doesn't" false
    (Schedule.runnable Schedule.Finished);
  Alcotest.(check bool) "crashed doesn't" false
    (Schedule.runnable Schedule.Crashed)

let test_schedulers_skip_crashed () =
  let v = view [| Schedule.Working; Crashed; Working |] in
  let rr = Schedule.round_robin () in
  let picks = List.init 4 (fun _ -> Option.get (rr v)) in
  Alcotest.(check (list int)) "round robin skips crashed" [ 0; 2; 0; 2 ] picks;
  Alcotest.(check (option int)) "solo of a crashed process stops" None
    (Schedule.solo 1 v);
  Alcotest.(check (option int)) "script skips crashed" (Some 2)
    (Schedule.script [ 1; 2 ] v);
  let rng = Rng.create 7 in
  let s = Schedule.random rng in
  for _ = 1 to 50 do
    match s v with
    | Some i -> Alcotest.(check bool) "random never crashed" true (i = 0 || i = 2)
    | None -> Alcotest.fail "should pick someone"
  done;
  let dead = view [| Schedule.Crashed; Crashed |] in
  Alcotest.(check (option int)) "all crashed -> None" None (rr dead)

let test_take_then_over_crashed () =
  (* the chaos-check shape: a capped adversarial prefix, then a solo
     window — composed over a view with a crashed process *)
  let v = view [| Schedule.Working; Crashed; Working |] in
  let s =
    Schedule.then_ (Schedule.take 2 (Schedule.round_robin ())) (Schedule.solo 2)
  in
  let picks = List.init 4 (fun _ -> Option.get (s v)) in
  Alcotest.(check (list int)) "prefix skips crashed, then solo" [ 0; 2; 2; 2 ]
    picks;
  (* take must not burn budget on None: a solo of the crashed process
     yields nothing, and the fallback takes over immediately *)
  let s' =
    Schedule.then_ (Schedule.take 5 (Schedule.solo 1)) (Schedule.solo 0)
  in
  Alcotest.(check (option int)) "empty prefix falls through" (Some 0) (s' v)

let test_pick_active () =
  let v = view [| Schedule.Idle; Finished; Exitg; Working |] in
  Alcotest.(check (option int)) "lowest active" (Some 2)
    (Schedule.pick_active v);
  let v' = view [| Schedule.Idle; Finished |] in
  Alcotest.(check (option int)) "none active" None (Schedule.pick_active v')

let suite =
  [
    Alcotest.test_case "round robin cycles" `Quick test_round_robin_cycles;
    Alcotest.test_case "round robin skips finished" `Quick
      test_round_robin_skips_finished;
    Alcotest.test_case "round robin stops when all done" `Quick
      test_round_robin_stops;
    Alcotest.test_case "solo" `Quick test_solo;
    Alcotest.test_case "lock step cycles" `Quick test_lock_step;
    Alcotest.test_case "lock step stops on finish" `Quick
      test_lock_step_stops_on_finish;
    Alcotest.test_case "script" `Quick test_script;
    Alcotest.test_case "script skips finished" `Quick
      test_script_skips_finished;
    Alcotest.test_case "random picks unfinished" `Quick
      test_random_only_unfinished;
    Alcotest.test_case "random_active excludes idle" `Quick
      test_random_active_excludes_idle;
    Alcotest.test_case "then_ chains" `Quick test_then_;
    Alcotest.test_case "take caps steps" `Quick test_take;
    Alcotest.test_case "runnable predicate" `Quick test_runnable_predicate;
    Alcotest.test_case "schedulers skip crashed" `Quick
      test_schedulers_skip_crashed;
    Alcotest.test_case "take/then_ compose over crashes" `Quick
      test_take_then_over_crashed;
    Alcotest.test_case "pick_active" `Quick test_pick_active;
  ]
