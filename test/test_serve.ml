(* The job-queue verification service. Contracts pinned here:

   - queue ordering: priority descending, FIFO within a class, and a
     yielded job re-queues BEHIND its class (round-robin, no hogging);
   - per-job state budgets are enforced per configuration (exit 3);
   - the verdict cache hits on fingerprint + full identity, detects a
     deliberate digest collision (degrades to a miss, never a wrong
     verdict), and serves a repeat submission with zero fresh states;
   - a preempted-then-resumed job's verdict and per-config stats are
     bit-identical (mod clock) to the same job run uninterrupted;
   - deadline and cancel exit paths;
   - a crash mid-job (Resilience.plan_of_seed-style faults) is absorbed:
     the pool retries with salvage and converges on the fault-free
     result. *)

let spec_check ?max_states ?deadline_s ?priority ?(m = 3) () =
  Serve.Spec.make ?max_states ?deadline_s ?priority ~m Serve.Spec.Check
    Serve.Spec.Mutex

let tmp_dir name =
  let d = Filename.temp_file ("coordserve-" ^ name) ".d" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let with_plan plan f =
  Resilience.arm plan;
  Fun.protect ~finally:Resilience.disarm f

let finished_outcome tag pool id =
  match (Option.get (Serve.Pool.job pool id)).Serve.Pool.status with
  | Serve.Pool.Finished o -> o
  | Serve.Pool.Crashed msg -> Alcotest.fail (tag ^ ": crashed: " ^ msg)
  | _ -> Alcotest.fail (tag ^ ": not finished")

let check_stats_list tag (a : Check.Checker_stats.t list)
    (b : Check.Checker_stats.t list) =
  Alcotest.(check int) (tag ^ ": same config count") (List.length a)
    (List.length b);
  List.iteri
    (fun i (x, y) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: cfg %d stats bit-identical (mod clock)" tag i)
        true
        (Check.Checker_stats.equal_ignoring_time x y))
    (List.combine a b)

(* ------------------------------ spec ---------------------------------- *)

let test_spec_roundtrip () =
  let specs =
    [
      spec_check ~max_states:1000 ~deadline_s:1.5 ~priority:3 ();
      Serve.Spec.make ~n:3 ~attempts:50 ~seed:7 Serve.Spec.Fuzz
        Serve.Spec.Consensus;
      Serve.Spec.make ~steps:500 ~strategy:Check.Hunt.Chaos Serve.Spec.Hunt
        Serve.Spec.Renaming;
    ]
  in
  List.iter
    (fun s ->
      match Serve.Spec.parse (Serve.Spec.to_line s) with
      | Ok s' ->
        Alcotest.(check bool)
          ("round-trips: " ^ Serve.Spec.to_line s)
          true (s = s')
      | Error e -> Alcotest.fail e)
    specs;
  (* defaults match coordctl check *)
  Alcotest.(check int) "mutex default m" 3
    (Serve.Spec.make Serve.Spec.Check Serve.Spec.Mutex).Serve.Spec.m;
  Alcotest.(check int) "consensus default m at n=3" 5
    (Serve.Spec.make ~n:3 Serve.Spec.Check Serve.Spec.Consensus).Serve.Spec.m;
  (* priority is scheduling, not identity *)
  Alcotest.(check string) "priority not in ident"
    (Serve.Spec.ident (spec_check ()))
    (Serve.Spec.ident (spec_check ~priority:9 ()));
  (match Serve.Spec.parse "kind = check" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing proto must not parse");
  match Serve.Spec.parse "kind = check\nproto = mutex\nfrobnicate = 1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown key must not parse"

(* ------------------------------ cache --------------------------------- *)

let entry ident =
  {
    Serve.Cache.ident;
    verdict = "pass";
    exit_code = 0;
    detail = "d";
    n_states = 1;
    stats = None;
  }

let test_cache_hit_miss_collision () =
  let c = Serve.Cache.create () in
  let key = Digest.string "some-config" in
  Serve.Cache.add c ~key (entry "config A");
  (match Serve.Cache.find c ~key ~ident:"config A" with
  | Some e -> Alcotest.(check string) "hit returns the entry" "config A"
                e.Serve.Cache.ident
  | None -> Alcotest.fail "expected a hit");
  Alcotest.(check int) "one hit" 1 (Serve.Cache.hits c);
  (* a deliberate collision: same 16-byte digest, different configuration
     identity — must degrade to a detected miss, never a wrong verdict *)
  (match Serve.Cache.find c ~key ~ident:"config B (colliding)" with
  | None -> ()
  | Some _ -> Alcotest.fail "a colliding ident must not hit");
  Alcotest.(check int) "collision counted" 1 (Serve.Cache.collisions c);
  (match Serve.Cache.find c ~key:(Digest.string "other") ~ident:"x" with
  | None -> ()
  | Some _ -> Alcotest.fail "unknown key must miss");
  Alcotest.(check int) "misses counted" 2 (Serve.Cache.misses c);
  (* both colliding entries can coexist under the key *)
  Serve.Cache.add c ~key (entry "config B (colliding)");
  Alcotest.(check int) "bucket holds both" 2 (Serve.Cache.length c);
  match Serve.Cache.find c ~key ~ident:"config B (colliding)" with
  | Some _ -> ()
  | None -> Alcotest.fail "second entry must now hit"

let test_cache_save_load () =
  let c = Serve.Cache.create () in
  let key = Digest.string "k" in
  Serve.Cache.add c ~key (entry "id1");
  let path = Filename.temp_file "coordserve-cache" ".bin" in
  Serve.Cache.save c ~path;
  let c' = Serve.Cache.load ~path in
  Alcotest.(check int) "entries survive" 1 (Serve.Cache.length c');
  (match Serve.Cache.find c' ~key ~ident:"id1" with
  | Some _ -> ()
  | None -> Alcotest.fail "persisted entry must hit");
  (* a corrupt file loads as an empty cache, not an exception *)
  let oc = open_out_bin path in
  output_string oc "not a marshalled cache";
  close_out oc;
  Alcotest.(check int) "corrupt file -> empty cache" 0
    (Serve.Cache.length (Serve.Cache.load ~path));
  Sys.remove path

(* -------------------------- queue ordering ---------------------------- *)

let test_queue_ordering () =
  let dir = tmp_dir "queue" in
  (* tiny quantum so check jobs yield instead of finishing in one slice *)
  let pool = Serve.Pool.create ~quantum:200 ~state_dir:dir () in
  let j0 = Serve.Pool.submit pool (spec_check ()) in
  let j1 = Serve.Pool.submit pool (spec_check ~priority:5 ()) in
  let j2 = Serve.Pool.submit pool (spec_check ()) in
  Alcotest.(check (list int)) "priority desc, FIFO within a class"
    [ j1; j0; j2 ]
    (Serve.Pool.runnable pool);
  (* the high-priority job runs first; it yields and STAYS first (its
     class outranks the others) *)
  ignore (Serve.Pool.step pool);
  Alcotest.(check (list int)) "yielded high-priority job keeps its class"
    [ j1; j0; j2 ]
    (Serve.Pool.runnable pool);
  (* cancel it; now the two equal-priority jobs round-robin: j0 slices,
     then re-queues behind j2 *)
  Alcotest.(check bool) "cancel a yielded job" true (Serve.Pool.cancel pool j1);
  ignore (Serve.Pool.step pool);
  Alcotest.(check (list int)) "yielded job goes behind its class" [ j2; j0 ]
    (Serve.Pool.runnable pool);
  Serve.Pool.drain pool;
  let o0 = finished_outcome "j0" pool j0 in
  Alcotest.(check int) "cancelled job explored nothing, others complete" 0
    o0.Serve.Runner.cached_configs

(* ------------------------- budget enforcement ------------------------- *)

let test_per_job_budget () =
  let dir = tmp_dir "budget" in
  let pool = Serve.Pool.create ~state_dir:dir () in
  let id = Serve.Pool.submit pool (spec_check ~max_states:500 ()) in
  Serve.Pool.drain pool;
  let o = finished_outcome "budget" pool id in
  Alcotest.(check bool) "budget truncates the job" true
    (o.Serve.Runner.verdict = Serve.Runner.Truncated);
  Alcotest.(check int) "exit 3" 3 (Serve.Runner.verdict_exit o.Serve.Runner.verdict);
  Alcotest.(check int) "all six namings attempted" 6 o.Serve.Runner.configs;
  List.iter
    (fun st ->
      Alcotest.(check bool) "each config stopped on its budget" true
        (st.Check.Checker_stats.stop = Check.Checker_stats.Budget))
    o.Serve.Runner.stats

(* --------------- preemption: resume is bit-identical ------------------ *)

let test_preempt_resume_bit_identity () =
  (* the same job, uninterrupted (huge quantum: one slice per config)
     vs preempted every 700 states; separate caches so neither feeds the
     other *)
  let base = tmp_dir "preempt" in
  let run ~quantum =
    let dir = Filename.concat base (Printf.sprintf "q%d" quantum) in
    let pool = Serve.Pool.create ~quantum ~state_dir:dir () in
    let id = Serve.Pool.submit pool (spec_check ()) in
    Serve.Pool.drain pool;
    ( finished_outcome "preempt" pool id,
      (Option.get (Serve.Pool.job pool id)).Serve.Pool.slices )
  in
  let uo, uslices = run ~quantum:1_000_000 in
  let po, pslices = run ~quantum:700 in
  Alcotest.(check bool) "preemption actually happened" true
    (pslices > uslices);
  Alcotest.(check bool) "same verdict" true
    (po.Serve.Runner.verdict = uo.Serve.Runner.verdict);
  Alcotest.(check int) "same total states" uo.Serve.Runner.states
    po.Serve.Runner.states;
  Alcotest.(check int) "same fresh states" uo.Serve.Runner.explored
    po.Serve.Runner.explored;
  Alcotest.(check string) "same detail" uo.Serve.Runner.detail
    po.Serve.Runner.detail;
  check_stats_list "preempted vs uninterrupted" uo.Serve.Runner.stats
    po.Serve.Runner.stats

(* ------------------- repeat submissions hit the cache ----------------- *)

let test_repeat_served_from_cache () =
  let dir = tmp_dir "repeat" in
  let pool = Serve.Pool.create ~quantum:900 ~state_dir:dir () in
  let a = Serve.Pool.submit pool (spec_check ()) in
  Serve.Pool.drain pool;
  let explored_after_first = Serve.Pool.explored pool in
  let b = Serve.Pool.submit pool (spec_check ()) in
  Serve.Pool.drain pool;
  let oa = finished_outcome "first" pool a in
  let ob = finished_outcome "repeat" pool b in
  Alcotest.(check int) "repeat explored zero fresh states" 0
    ob.Serve.Runner.explored;
  Alcotest.(check int) "pool explored nothing new" explored_after_first
    (Serve.Pool.explored pool);
  Alcotest.(check int) "every config served from cache"
    ob.Serve.Runner.configs ob.Serve.Runner.cached_configs;
  Alcotest.(check int) "a fully-cached job takes one slice" 1
    (Option.get (Serve.Pool.job pool b)).Serve.Pool.slices;
  Alcotest.(check bool) "same verdict" true
    (oa.Serve.Runner.verdict = ob.Serve.Runner.verdict);
  Alcotest.(check int) "same states" oa.Serve.Runner.states
    ob.Serve.Runner.states;
  (* the cached stats are the original run's stats, bit for bit *)
  check_stats_list "cached stats replay the original" oa.Serve.Runner.stats
    ob.Serve.Runner.stats;
  (* a different m is a different fingerprint: no false sharing *)
  let c = Serve.Pool.submit pool (spec_check ~m:2 ()) in
  Serve.Pool.drain pool;
  let oc_ = finished_outcome "m=2" pool c in
  Alcotest.(check int) "different config misses the cache" 0
    oc_.Serve.Runner.cached_configs

(* ------------------------ deadline and cancel ------------------------- *)

let test_deadline_exit () =
  let dir = tmp_dir "deadline" in
  let pool = Serve.Pool.create ~state_dir:dir () in
  (* an expired deadline still stops gracefully at a generation boundary *)
  let id = Serve.Pool.submit pool (spec_check ~deadline_s:0.0 ()) in
  Serve.Pool.drain pool;
  let o = finished_outcome "deadline" pool id in
  Alcotest.(check bool) "deadline verdict" true
    (o.Serve.Runner.verdict = Serve.Runner.Deadline);
  Alcotest.(check int) "exit 6" 6
    (Serve.Runner.verdict_exit o.Serve.Runner.verdict);
  (* a generous deadline changes nothing *)
  let id2 = Serve.Pool.submit pool (spec_check ~deadline_s:3600.0 ()) in
  Serve.Pool.drain pool;
  let o2 = finished_outcome "generous deadline" pool id2 in
  Alcotest.(check bool) "pass under a generous deadline" true
    (o2.Serve.Runner.verdict = Serve.Runner.Pass)

let test_cancel_paths () =
  let dir = tmp_dir "cancel" in
  let pool = Serve.Pool.create ~state_dir:dir () in
  let a = Serve.Pool.submit pool (spec_check ()) in
  let b = Serve.Pool.submit pool (spec_check ~m:2 ()) in
  Alcotest.(check bool) "cancel a queued job" true (Serve.Pool.cancel pool b);
  Serve.Pool.drain pool;
  Alcotest.(check bool) "cancelled job never ran" true
    ((Option.get (Serve.Pool.job pool b)).Serve.Pool.status
    = Serve.Pool.Cancelled);
  ignore (finished_outcome "survivor" pool a);
  Alcotest.(check bool) "cannot cancel a finished job" false
    (Serve.Pool.cancel pool a);
  Alcotest.(check bool) "cannot cancel an unknown job" false
    (Serve.Pool.cancel pool 999)

(* --------------------- crash-mid-job salvage -------------------------- *)

let test_crash_mid_job_salvage () =
  let base = tmp_dir "crash" in
  let clean =
    let pool =
      Serve.Pool.create ~state_dir:(Filename.concat base "clean") ()
    in
    let id = Serve.Pool.submit pool (spec_check ()) in
    Serve.Pool.drain pool;
    finished_outcome "fault-free" pool id
  in
  (* a worker kill escapes the slice as an exception; the pool repairs
     the cursor and retries (salvage on), converging on the clean result *)
  let plan =
    {
      Resilience.seed = 2;
      faults = [ Resilience.Kill_domain { domain = 0; after_ticks = 600 } ];
    }
  in
  with_plan plan (fun () ->
      let pool =
        Serve.Pool.create ~state_dir:(Filename.concat base "kill") ()
      in
      let id = Serve.Pool.submit pool (spec_check ()) in
      Serve.Pool.drain pool;
      Alcotest.(check int) "the kill fired" 1 (Resilience.fired ());
      let j = Option.get (Serve.Pool.job pool id) in
      Alcotest.(check bool) "the crash cost a recovery" true
        (j.Serve.Pool.recoveries >= 1);
      let o = finished_outcome "killed" pool id in
      Alcotest.(check bool) "same verdict as fault-free" true
        (o.Serve.Runner.verdict = clean.Serve.Runner.verdict);
      Alcotest.(check int) "same states as fault-free"
        clean.Serve.Runner.states o.Serve.Runner.states;
      check_stats_list "salvaged stats match fault-free" clean.Serve.Runner.stats
        o.Serve.Runner.stats);
  (* an allocation failure degrades INSIDE the slice (Oom stop with a
     flushed snapshot); the runner yields and resumes without the pool
     ever seeing an exception *)
  let plan =
    {
      Resilience.seed = 3;
      faults = [ Resilience.Alloc_fail { after_boundaries = 3 } ];
    }
  in
  with_plan plan (fun () ->
      let pool =
        Serve.Pool.create ~state_dir:(Filename.concat base "oom") ()
      in
      let id = Serve.Pool.submit pool (spec_check ()) in
      Serve.Pool.drain pool;
      let o = finished_outcome "oom" pool id in
      Alcotest.(check bool) "same verdict after oom degradation" true
        (o.Serve.Runner.verdict = clean.Serve.Runner.verdict);
      Alcotest.(check int) "same states after oom degradation"
        clean.Serve.Runner.states o.Serve.Runner.states;
      check_stats_list "oom-degraded stats match fault-free"
        clean.Serve.Runner.stats o.Serve.Runner.stats)

(* ------------------------------ daemon -------------------------------- *)

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let read_kv path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         match String.index_opt line '=' with
         | None -> None
         | Some i ->
           Some
             ( String.trim (String.sub line 0 i),
               String.trim
                 (String.sub line (i + 1) (String.length line - i - 1)) ))

let test_daemon_once_drains_spool () =
  let spool = tmp_dir "spool" in
  let run_once () =
    Serve.Daemon.run
      ~log:(fun _ -> ())
      {
        (Serve.Daemon.default ~spool) with
        Serve.Daemon.once = true;
        workers = 1;
      }
  in
  write_file
    (Filename.concat spool "good.job")
    "kind = check\nproto = mutex\nm = 3\n";
  write_file (Filename.concat spool "bad.job") "kind = check\n";
  let code = run_once () in
  Alcotest.(check int) "clean exit" 0 code;
  let kv = read_kv (Filename.concat spool "done/good.result") in
  Alcotest.(check (option string)) "verdict recorded" (Some "pass")
    (List.assoc_opt "verdict" kv);
  Alcotest.(check (option string)) "exit recorded" (Some "0")
    (List.assoc_opt "exit" kv);
  (* the malformed spec got an error file, not a wedged daemon *)
  Alcotest.(check bool) "parse error reported" true
    (Sys.file_exists (Filename.concat spool "done/bad.error"));
  (* a restarted daemon loads the persisted cache and answers the
     identical job without exploring anything *)
  write_file
    (Filename.concat spool "again.job")
    "kind = check\nproto = mutex\nm = 3\n";
  Alcotest.(check int) "second run clean exit" 0 (run_once ());
  let kv2 = read_kv (Filename.concat spool "done/again.result") in
  Alcotest.(check (option string)) "repeat served from cache" (Some "true")
    (List.assoc_opt "cached" kv2);
  Alcotest.(check (option string)) "repeat explored nothing" (Some "0")
    (List.assoc_opt "explored" kv2);
  Alcotest.(check (option string)) "cached verdict matches"
    (List.assoc_opt "verdict" kv)
    (List.assoc_opt "verdict" kv2);
  (* the spool itself was drained *)
  Alcotest.(check bool) "job files claimed" true
    (Array.for_all
       (fun f -> not (Filename.check_suffix f ".job"))
       (Sys.readdir spool))

let suite =
  [
    Alcotest.test_case "spec round-trips; coordctl defaults" `Quick
      test_spec_roundtrip;
    Alcotest.test_case "cache: hit, miss, detected collision" `Quick
      test_cache_hit_miss_collision;
    Alcotest.test_case "cache: save/load; corrupt file is empty" `Quick
      test_cache_save_load;
    Alcotest.test_case "queue: priority, FIFO, yield re-queues behind" `Quick
      test_queue_ordering;
    Alcotest.test_case "per-job budget enforced (exit 3)" `Quick
      test_per_job_budget;
    Alcotest.test_case "preempt at boundary = uninterrupted (bit-identical)"
      `Quick test_preempt_resume_bit_identity;
    Alcotest.test_case "repeat submission served from cache, 0 explored"
      `Quick test_repeat_served_from_cache;
    Alcotest.test_case "deadline exit path (6)" `Quick test_deadline_exit;
    Alcotest.test_case "cancel exit paths" `Quick test_cancel_paths;
    Alcotest.test_case "crash mid-job salvaged to the fault-free result"
      `Quick test_crash_mid_job_salvage;
    Alcotest.test_case "daemon --once drains a spool" `Quick
      test_daemon_once_drains_spool;
  ]
