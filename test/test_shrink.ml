open Anonmem
open Check

(* Counterexample shrinking: corpus format round-trips, replay is
   deterministic, and the ddmin lattice actually minimizes the paper's
   witnesses — the Figure-1 n=3 m=3 mutual-exclusion break must come out at
   most a tenth of its original schedule, and even-m deadlock lassos must
   shrink while still replaying. *)

module F = Fuzz.Make (Coord.Amutex.P)

let rot k m = Array.init m (fun i -> (i + k) mod m)

let unit_inputs n = Array.make n ()

(* ---- raw corpus format ---- *)

let sample_raw =
  {
    Shrink.protocol = "mutex";
    property = "deadlock-freedom";
    seed = 42;
    m = 4;
    ids = [| 1; 2 |];
    inputs = [| "-"; "-" |];
    namings = [| rot 0 4; rot 2 4 |];
    crashes = [| (3, 0); (10, 1) |];
    steps = [| 0; 1; 1; 0; 1 |];
    loop = [| 1; 0 |];
  }

let via_file raw =
  let path = Filename.temp_file "corpus" ".fuzz" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Shrink.write_raw path raw;
      Shrink.read_raw path)

let test_raw_roundtrip () =
  match via_file sample_raw with
  | Error e -> Alcotest.fail ("round-trip failed: " ^ e)
  | Ok raw' ->
    Alcotest.(check bool) "raw record survives the text format" true
      (sample_raw = raw')

let test_raw_roundtrip_empty_sections () =
  (* crashes and loop lines are omitted when empty; parsing must default *)
  let raw = { sample_raw with crashes = [||]; loop = [||] } in
  match via_file raw with
  | Error e -> Alcotest.fail ("round-trip failed: " ^ e)
  | Ok raw' ->
    Alcotest.(check bool) "empty crash/loop sections round-trip" true
      (raw = raw')

let test_read_raw_rejects_garbage () =
  let path = Filename.temp_file "corpus" ".fuzz" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not a bundle\n";
      close_out oc;
      match Shrink.read_raw path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "garbage accepted")

let fails_of_raw raw =
  match F.S.of_raw ~input_of_string:(fun _ -> ()) raw with
  | exception Failure _ -> true
  | _ -> false

let test_of_raw_validates () =
  Alcotest.(check bool) "well-formed raw accepted" false
    (fails_of_raw sample_raw);
  Alcotest.(check bool) "non-permutation naming rejected" true
    (fails_of_raw { sample_raw with namings = [| [| 0; 0; 1; 2 |]; rot 0 4 |] });
  Alcotest.(check bool) "out-of-range step rejected" true
    (fails_of_raw { sample_raw with steps = [| 0; 5 |] });
  Alcotest.(check bool) "out-of-range crash proc rejected" true
    (fails_of_raw { sample_raw with crashes = [| (3, 9) |] })

(* ---- replay determinism ---- *)

let test_replay_deterministic () =
  let b =
    {
      F.S.m = 3;
      ids = [| 7; 13 |];
      inputs = unit_inputs 2;
      namings = [| rot 0 3; rot 1 3 |];
      crashes = [| (20, 1) |];
      steps = Array.init 80 (fun i -> i mod 2);
      loop = [||];
      seed = 5;
    }
  in
  let prop = F.S.Safety (fun _ -> false) in
  let hit1, t1 = F.S.replay prop b in
  let hit2, t2 = F.S.replay prop b in
  Alcotest.(check bool) "never-true predicate never hits" false (hit1 || hit2);
  Alcotest.(check bool) "replays are identical traces" true (t1 = t2)

(* ---- acceptance: the Figure-1 n=3 m=3 mutual-exclusion witness ---- *)

(* distance from every state TO [target] (reverse BFS) *)
let rdist_to (succs : F.E.transition list array) target =
  let n = Array.length succs in
  let preds = Array.make n [] in
  Array.iteri
    (fun s ts ->
      List.iter
        (fun (t : F.E.transition) -> preds.(t.dst) <- s :: preds.(t.dst))
        ts)
    succs;
  let dist = Array.make n max_int in
  dist.(target) <- 0;
  let q = Queue.create () in
  Queue.add target q;
  while not (Queue.is_empty q) do
    let s = Queue.pop q in
    List.iter
      (fun p ->
        if dist.(p) = max_int then begin
          dist.(p) <- dist.(s) + 1;
          Queue.add p q
        end)
      preds.(s)
  done;
  dist

(* A deliberately long schedule reaching [target]: wander the region that
   can still reach it with the bursty texture fuzz probes use (one process
   runs 1-60 consecutive steps), then descend along shortest-path edges.
   This is the shape a fuzzer's random witness has — lots of irrelevant
   activity around a short core — and is what the shrinker must strip. *)
let long_schedule rng (g : F.E.graph) target ~wander =
  let rdist = rdist_to g.succs target in
  Alcotest.(check bool) "witness reachable" true (rdist.(0) < max_int);
  let nprocs = Array.length g.cfg.ids in
  let steps = ref [] in
  let cur = ref 0 in
  let total = ref 0 in
  while !total < wander do
    let p = Rng.int rng nprocs in
    let burst = 1 + Rng.int rng 60 in
    let continue = ref true in
    let k = ref 0 in
    while !k < burst && !continue do
      match
        List.find_opt
          (fun (t : F.E.transition) ->
            t.label.proc = p && rdist.(t.dst) < max_int)
          g.succs.(!cur)
      with
      | Some t ->
        steps := p :: !steps;
        cur := t.dst;
        incr k;
        incr total
      | None -> continue := false
    done
  done;
  while !cur <> target do
    let t =
      List.find
        (fun (t : F.E.transition) -> rdist.(t.dst) = rdist.(!cur) - 1)
        g.succs.(!cur)
    in
    steps := t.label.proc :: !steps;
    cur := t.dst
  done;
  Array.of_list (List.rev !steps)

let me_prop = F.S.Safety (fun rt -> F.S.R.critical_pair rt <> None)

let test_shrink_me_witness () =
  (* Theorem 3.4's attack instance: 3 processes, 3 registers, rotation
     namings spaced m/d = 1 apart — mutual exclusion actually breaks. *)
  let namings = [| rot 0 3; rot 1 3; rot 2 3 |] in
  let cfg =
    {
      F.E.ids = [| 1; 2; 3 |];
      inputs = unit_inputs 3;
      namings = Array.map Naming.of_array namings;
    }
  in
  let g = F.E.explore ~max_states:400_000 cfg in
  Alcotest.(check bool) "graph complete" true g.F.E.complete;
  let flat = F.E.to_flat g in
  let target =
    match Mutex_props.mutual_exclusion flat with
    | Some v -> v.Mutex_props.state
    | None -> Alcotest.fail "expected an ME violation (paper, Theorem 3.4)"
  in
  let rng = Rng.create 2718 in
  let steps = long_schedule rng g target ~wander:3000 in
  let bundle =
    {
      F.S.m = 3;
      ids = [| 1; 2; 3 |];
      inputs = unit_inputs 3;
      namings;
      crashes = [||];
      steps;
      loop = [||];
      seed = 1;
    }
  in
  Alcotest.(check bool) "original bundle hits" true (F.S.hits me_prop bundle);
  let shrunk, stats = F.S.shrink me_prop bundle in
  Alcotest.(check int) "steps_before is the original length"
    (Array.length steps) stats.F.S.steps_before;
  Alcotest.(check bool)
    (Printf.sprintf "shrunk to <= 10%% (%d -> %d steps)" stats.F.S.steps_before
       stats.F.S.steps_after)
    true
    (stats.F.S.steps_after * 10 <= stats.F.S.steps_before);
  (* deterministic replay of the minimized bundle *)
  let h1, t1 = F.S.replay me_prop shrunk in
  let h2, t2 = F.S.replay me_prop shrunk in
  Alcotest.(check bool) "shrunk bundle still hits, twice" true (h1 && h2);
  Alcotest.(check bool) "shrunk replays identical" true (t1 = t2);
  (* 1-minimality spot check: no single remaining step is removable *)
  let len = Array.length shrunk.F.S.steps in
  for i = 0 to min 4 (len - 1) do
    let without =
      Array.init (len - 1) (fun j ->
          if j < i then shrunk.F.S.steps.(j) else shrunk.F.S.steps.(j + 1))
    in
    Alcotest.(check bool)
      (Printf.sprintf "step %d is load-bearing" i)
      false
      (F.S.hits me_prop { shrunk with F.S.steps = without })
  done;
  (* ids come out canonicalized *)
  Alcotest.(check bool) "ids canonicalized to 1..n" true
    (Array.to_list shrunk.F.S.ids
    = List.init (F.S.n_procs shrunk) (fun i -> i + 1))

(* ---- lasso shrinking: Theorem 3.1's even-m deadlock ---- *)

let test_shrink_df_lasso () =
  (* two processes on 4 registers, namings rotated m/d = 2 apart: mutual
     exclusion holds but the adversary can livelock them forever *)
  let namings = [| rot 0 4; rot 2 4 |] in
  let cfg =
    {
      F.E.ids = [| 1; 2 |];
      inputs = unit_inputs 2;
      namings = Array.map Naming.of_array namings;
    }
  in
  let g = F.E.explore ~max_states:50_000 cfg in
  Alcotest.(check bool) "graph complete" true g.F.E.complete;
  let flat = F.E.to_flat g in
  let v =
    match Mutex_props.deadlock_freedom flat with
    | Some v -> v
    | None -> Alcotest.fail "expected a DF violation (paper, Theorem 3.1)"
  in
  let bundle =
    match F.witness_bundle ~seed:1 g (F.Cycle v.Mutex_props.states) with
    | Some b -> b
    | None -> Alcotest.fail "lasso construction failed on the graph witness"
  in
  Alcotest.(check bool) "lasso bundle replays" true (F.S.hits F.S.Lasso bundle);
  let shrunk, stats = F.S.shrink F.S.Lasso bundle in
  Alcotest.(check bool) "minimized lasso still replays" true
    (F.S.hits F.S.Lasso shrunk);
  Alcotest.(check bool) "loop survives minimization" true
    (Array.length shrunk.F.S.loop > 0);
  Alcotest.(check bool) "schedule did not grow" true
    (stats.F.S.steps_after <= stats.F.S.steps_before);
  (* shrinking is a fixpoint: a second pass accepts nothing *)
  let _, stats2 = F.S.shrink F.S.Lasso shrunk in
  Alcotest.(check int) "second shrink pass accepts nothing" 0
    stats2.F.S.accepted

let test_shrink_rejects_non_reproducing () =
  let b =
    {
      F.S.m = 3;
      ids = [| 1; 2 |];
      inputs = unit_inputs 2;
      namings = [| rot 0 3; rot 0 3 |];
      crashes = [||];
      steps = [| 0; 1 |];
      loop = [||];
      seed = 1;
    }
  in
  match F.S.shrink me_prop b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "shrink accepted a bundle that does not reproduce"

let suite =
  [
    Alcotest.test_case "raw bundle round-trips" `Quick test_raw_roundtrip;
    Alcotest.test_case "empty sections round-trip" `Quick
      test_raw_roundtrip_empty_sections;
    Alcotest.test_case "read_raw rejects garbage" `Quick
      test_read_raw_rejects_garbage;
    Alcotest.test_case "of_raw validates" `Quick test_of_raw_validates;
    Alcotest.test_case "replay deterministic" `Quick test_replay_deterministic;
    Alcotest.test_case "Fig-1 n=3 m=3 ME witness shrinks to <= 10%" `Slow
      test_shrink_me_witness;
    Alcotest.test_case "even-m deadlock lasso shrinks and replays" `Quick
      test_shrink_df_lasso;
    Alcotest.test_case "shrink rejects non-reproducing bundles" `Quick
      test_shrink_rejects_non_reproducing;
  ]
