open Check

(* Durable checkpoint/resume for the explorers. The contract under test:
   a run truncated by its state budget or stopped by a (simulated) signal
   leaves a snapshot from which a resumed run reproduces the
   uninterrupted run's graph AND statistics bit-identically (modulo
   wall-clock), for both explorers and both reductions; corrupt or
   mismatched snapshots are refused with a typed error. *)

module P = Coord.Amutex.P
module E = Explore.Make (P)

let cfg_m m = E.config ~m ~ids:[ 7; 13 ] ~inputs:[ (); () ] ()

let tmp_snap name = Filename.temp_file ("coordsnap-" ^ name) ".snap"

let check_graph tag (a : E.graph) (b : E.graph) =
  Alcotest.(check bool) (tag ^ ": same states") true (a.E.states = b.E.states);
  Alcotest.(check bool) (tag ^ ": same orbits") true (a.E.orbits = b.E.orbits);
  Alcotest.(check bool) (tag ^ ": same succs") true (a.E.succs = b.E.succs);
  Alcotest.(check bool)
    (tag ^ ": same completeness")
    true
    (a.E.complete = b.E.complete)

let check_stats tag a b =
  Alcotest.(check bool)
    (tag ^ ": stats bit-identical (mod clock)")
    true
    (Checker_stats.equal_ignoring_time a b)

(* [run ~par] is one explorer under one reduction with one option set. *)
let run ~par ?max_states ?snapshot_every ?snapshot_to ?resume_from ?salvage
    ~reduction cfg =
  if par then
    E.explore_par ~domains:2 ~par_threshold:2 ?max_states ?snapshot_every
      ?snapshot_to ?resume_from ?salvage ~reduction cfg
  else
    E.explore_with_stats ?max_states ?snapshot_every ?snapshot_to
      ?resume_from ?salvage ~reduction cfg

let expect_error tag pred f =
  match f () with
  | exception Snapshot.Error e ->
    Alcotest.(check bool)
      (tag ^ ": rejected with the right error: " ^ Snapshot.error_message e)
      true (pred e)
  | exception e ->
    Alcotest.failf "%s: expected Snapshot.Error, got %s" tag
      (Printexc.to_string e)
  | _ -> Alcotest.failf "%s: expected Snapshot.Error, but it succeeded" tag

(* ------------------- envelope (file format) layer ------------------- *)

let test_envelope_roundtrip () =
  let path = tmp_snap "env" in
  let fp = Digest.string "some exploration config" in
  let payload = "PAYLOAD \x00\x01\xff bytes" in
  Snapshot.write ~path ~fingerprint:fp ~descr:"protocol=x n=2" payload;
  let meta, got = Snapshot.read ~path in
  Alcotest.(check int) "version" 4 meta.Snapshot.version;
  Alcotest.(check string) "fingerprint" fp meta.Snapshot.fingerprint;
  Alcotest.(check string) "descr" "protocol=x n=2" meta.Snapshot.descr;
  Alcotest.(check string) "payload" payload got;
  let meta2 = Snapshot.read_meta ~path in
  Alcotest.(check string) "read_meta fingerprint" fp
    meta2.Snapshot.fingerprint;
  (* matching fingerprint passes silently *)
  Snapshot.check_fingerprint ~path meta ~fingerprint:fp ~descr:"current";
  expect_error "foreign fingerprint"
    (function Snapshot.Config_mismatch _ -> true | _ -> false)
    (fun () ->
      Snapshot.check_fingerprint ~path meta
        ~fingerprint:(Digest.string "a different exploration")
        ~descr:"current");
  Sys.remove path

(* Chunked appends: each append is one more self-checked chunk, [read]
   returns the newest, and the file compacts back to a single chunk after
   [max_chunks] boundaries. *)
let test_append_roundtrip () =
  let path = tmp_snap "append" in
  let fp = Digest.string "cfg" in
  Snapshot.write ~path ~fingerprint:fp ~descr:"d" "boundary 0";
  let size1 = (Unix.stat path).Unix.st_size in
  Snapshot.append ~path ~fingerprint:fp ~descr:"d" "boundary 1";
  Snapshot.append ~path ~fingerprint:fp ~descr:"d" "boundary 22";
  let _, got = Snapshot.read ~path in
  Alcotest.(check string) "read returns the newest chunk" "boundary 22" got;
  Alcotest.(check bool) "appends grew the file" true
    ((Unix.stat path).Unix.st_size > size1);
  (* salvage on an intact file reports nothing to salvage *)
  let _, got', salv = Snapshot.read_salvaged ~path in
  Alcotest.(check string) "salvaged read agrees" "boundary 22" got';
  Alcotest.(check bool) "no salvage needed" true (salv = None);
  (* push past [max_chunks]: the file compacts (rewrites) and still
     serves the newest boundary *)
  for i = 3 to Snapshot.max_chunks + 2 do
    Snapshot.append ~path ~fingerprint:fp ~descr:"d"
      (Printf.sprintf "boundary %d" i)
  done;
  let _, last = Snapshot.read ~path in
  Alcotest.(check string) "newest after compaction"
    (Printf.sprintf "boundary %d" (Snapshot.max_chunks + 2))
    last;
  Sys.remove path

let rewrite path bytes =
  let oc = open_out_bin path in
  output_bytes oc bytes;
  close_out oc

let slurp path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Bytes.of_string s

let test_damage_rejected () =
  let path = tmp_snap "damage" in
  let fp = Digest.string "cfg" in
  Snapshot.write ~path ~fingerprint:fp ~descr:"d" "the payload to protect";
  let good = slurp path in
  let len = Bytes.length good in
  (* flipped payload byte: CRC must catch it *)
  let bad = Bytes.copy good in
  Bytes.set bad (len - 1)
    (Char.chr (Char.code (Bytes.get bad (len - 1)) lxor 0xff));
  rewrite path bad;
  expect_error "bit flip"
    (function Snapshot.Corrupt _ -> true | _ -> false)
    (fun () -> Snapshot.read ~path);
  (* truncated file *)
  rewrite path (Bytes.sub good 0 (len - 5));
  expect_error "truncation"
    (function Snapshot.Corrupt _ -> true | _ -> false)
    (fun () -> Snapshot.read ~path);
  (* not a snapshot at all *)
  rewrite path (Bytes.of_string "XXXXXXXXXX not a snapshot XXXXXXXXXX");
  expect_error "garbage"
    (function Snapshot.Bad_magic _ -> true | _ -> false)
    (fun () -> Snapshot.read ~path);
  (* future format version *)
  let future = Bytes.copy good in
  Bytes.set future 9 (Char.chr 42);
  rewrite path future;
  expect_error "version"
    (function
      | Snapshot.Bad_version { found = 42; _ } -> true | _ -> false)
    (fun () -> Snapshot.read ~path);
  Sys.remove path;
  expect_error "missing file"
    (function Snapshot.Io _ -> true | _ -> false)
    (fun () -> Snapshot.read ~path)

(* ------------------------- salvage matrix ---------------------------- *)

(* Envelope-level salvage: build a 3-chunk file with known payloads and
   damage it in every interesting place. Chunk frame = 1-byte marker +
   8-byte length + 4-byte CRC = 13 bytes of framing per chunk. *)
let test_salvage_matrix_envelope () =
  let path = tmp_snap "salvage" in
  let fp = Digest.string "cfg" in
  let p1 = "alpha" and p2 = "bravo!" and p3 = "charlie!!" in
  let header_len = 9 + 1 + 16 + 2 + 1 (* descr "d" *) in
  let chunk_len p = 13 + String.length p in
  let fresh () =
    if Sys.file_exists path then Sys.remove path;
    Snapshot.write ~path ~fingerprint:fp ~descr:"d" p1;
    Snapshot.append ~path ~fingerprint:fp ~descr:"d" p2;
    Snapshot.append ~path ~fingerprint:fp ~descr:"d" p3
  in
  fresh ();
  let good = slurp path in
  Alcotest.(check int) "layout arithmetic"
    (header_len + chunk_len p1 + chunk_len p2 + chunk_len p3)
    (Bytes.length good);
  let damaged mutate =
    let b = Bytes.copy good in
    mutate b;
    rewrite path b
  in
  let expect_salvage tag ~payload ~kept =
    (match Snapshot.read ~path with
    | exception Snapshot.Error (Snapshot.Corrupt _) -> ()
    | exception e ->
      Alcotest.failf "%s: strict read: expected Corrupt, got %s" tag
        (Printexc.to_string e)
    | _ -> Alcotest.failf "%s: strict read accepted damage" tag);
    let _, got, salv = Snapshot.read_salvaged ~path in
    Alcotest.(check string) (tag ^ ": salvaged payload") payload got;
    match salv with
    | Some s ->
      Alcotest.(check int) (tag ^ ": kept chunks") kept s.Snapshot.kept_chunks
    | None -> Alcotest.failf "%s: salvage went unreported" tag
  in
  (* flipped byte in the newest chunk's payload: roll back one chunk *)
  damaged (fun b -> Bytes.set b (Bytes.length b - 1) 'X');
  expect_salvage "tail bit-flip" ~payload:p2 ~kept:2;
  (* torn append (truncated tail): roll back one chunk *)
  damaged (fun _ -> ());
  rewrite path (Bytes.sub good 0 (Bytes.length good - 5));
  expect_salvage "torn tail" ~payload:p2 ~kept:2;
  (* truncation reaching into chunk 2: only chunk 1 is left *)
  rewrite path
    (Bytes.sub good 0 (Bytes.length good - chunk_len p3 - 5));
  expect_salvage "deep truncation" ~payload:p1 ~kept:1;
  (* chunk 2's CRC bytes flipped: the scan must stop there — framing
     after a damaged chunk is unverifiable — keeping only chunk 1 *)
  damaged (fun b ->
      let crc_off = header_len + chunk_len p1 + 9 in
      Bytes.set b crc_off (Char.chr (Char.code (Bytes.get b crc_off) lxor 1)));
  expect_salvage "mid-file CRC damage" ~payload:p1 ~kept:1;
  (* a damaged header cannot be salvaged: nothing downstream is trusted *)
  damaged (fun b -> Bytes.set b 0 'Z');
  expect_error "salvage refuses bad magic"
    (function Snapshot.Bad_magic _ -> true | _ -> false)
    (fun () -> Snapshot.read_salvaged ~path);
  (* every chunk damaged: salvage has nothing to offer *)
  damaged (fun b ->
      List.iter
        (fun off -> Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 1)))
        [
          header_len + chunk_len p1 - 1;
          header_len + chunk_len p1 + chunk_len p2 - 1;
          Bytes.length good - 1;
        ]);
  expect_error "no intact chunk"
    (function Snapshot.Corrupt _ -> true | _ -> false)
    (fun () -> Snapshot.read_salvaged ~path);
  Sys.remove path

(* Explorer-level salvage: {seq, par} x {Full, Canon}. Truncate a run at
   ~half the space with per-generation snapshots, damage the snapshot's
   tail (bit-flip or torn write), and demand that a strict resume refuses
   while a [~salvage:true] resume rolls back to an older boundary and
   still lands bit-identically on the oracle. *)
let test_salvage_matrix_explorers () =
  List.iter
    (fun (rname, reduction) ->
      List.iter
        (fun par ->
          List.iter
            (fun (dname, damage) ->
              let tag =
                Printf.sprintf "%s/%s/%s"
                  (if par then "par" else "seq")
                  rname dname
              in
              let cfg = cfg_m 3 in
              let og, os = run ~par ~reduction cfg in
              let cut = max 2 (os.Checker_stats.n_states / 2) in
              let snap = tmp_snap "salvagex" in
              let tg, _ =
                run ~par ~max_states:cut ~snapshot_every:1 ~snapshot_to:snap
                  ~reduction cfg
              in
              Alcotest.(check bool) (tag ^ ": truncated") false tg.E.complete;
              (* double the newest boundary so at least two chunks exist
                 no matter where compaction landed, then damage the tail *)
              let meta = Snapshot.read_meta ~path:snap in
              let _, newest = Snapshot.read ~path:snap in
              Snapshot.append ~path:snap
                ~fingerprint:meta.Snapshot.fingerprint
                ~descr:meta.Snapshot.descr newest;
              Snapshot.append ~path:snap
                ~fingerprint:meta.Snapshot.fingerprint
                ~descr:meta.Snapshot.descr newest;
              let b = slurp snap in
              damage snap b;
              expect_error (tag ^ ": strict resume refused")
                (function Snapshot.Corrupt _ -> true | _ -> false)
                (fun () -> run ~par ~resume_from:snap ~reduction cfg);
              let rg, rs =
                run ~par ~salvage:true ~resume_from:snap ~reduction cfg
              in
              check_graph (tag ^ ": salvaged resume") og rg;
              check_stats (tag ^ ": salvaged resume") os rs;
              Sys.remove snap)
            [
              ( "flip",
                fun snap b ->
                  Bytes.set b (Bytes.length b - 1) '\xAA';
                  rewrite snap b );
              ( "torn",
                fun snap b ->
                  rewrite snap (Bytes.sub b 0 (Bytes.length b - 7)) );
            ])
        [ false; true ])
    [ ("full", Explore.Full); ("canon", Explore.Canon) ]

(* --------------------- kill-and-resume bit-identity ------------------ *)

(* The acceptance matrix: {sequential, parallel} x {Full, Canon}. Each
   cell: truncate by budget at ~half the space, then resume with the full
   budget and demand the uninterrupted run's exact graph and stats. *)
let test_kill_and_resume () =
  List.iter
    (fun (rname, reduction) ->
      List.iter
        (fun par ->
          let tag =
            Printf.sprintf "%s/%s" (if par then "par" else "seq") rname
          in
          let cfg = cfg_m 3 in
          let og, os = run ~par ~reduction cfg in
          Alcotest.(check bool) (tag ^ ": oracle complete") true og.E.complete;
          let total = os.Checker_stats.n_states in
          Alcotest.(check bool) (tag ^ ": space big enough") true (total > 8);
          let cut = max 2 (total / 2) in
          let snap = tmp_snap "kill" in
          let tg, ts =
            run ~par ~max_states:cut ~snapshot_to:snap ~reduction cfg
          in
          Alcotest.(check bool) (tag ^ ": truncated") false tg.E.complete;
          Alcotest.(check bool)
            (tag ^ ": truncated stats say so")
            false ts.Checker_stats.complete;
          Alcotest.(check bool)
            (tag ^ ": snapshot flushed")
            true (Sys.file_exists snap);
          let rg, rs = run ~par ~resume_from:snap ~reduction cfg in
          check_graph tag og rg;
          check_stats tag os rs;
          Sys.remove snap)
        [ false; true ])
    [ ("full", Explore.Full); ("canon", Explore.Canon) ]

(* Resuming with the SAME truncating budget must reproduce the truncated
   run bit-identically too — and a second truncation chains into a third
   resume that still lands exactly on the oracle. *)
let test_chained_resume () =
  let cfg = cfg_m 3 in
  let og, os = E.explore_with_stats cfg in
  let total = os.Checker_stats.n_states in
  let cut1 = max 2 (total / 3) in
  let cut2 = max (cut1 + 2) (2 * total / 3) in
  let f1 = tmp_snap "chain1" and f2 = tmp_snap "chain2" in
  let t1, _ = E.explore_with_stats ~max_states:cut1 ~snapshot_to:f1 cfg in
  Alcotest.(check bool) "first truncation" false t1.E.complete;
  let direct2, dstats2 = E.explore_with_stats ~max_states:cut2 cfg in
  let t2, tstats2 =
    E.explore_with_stats ~max_states:cut2 ~resume_from:f1 ~snapshot_to:f2 cfg
  in
  Alcotest.(check bool) "second truncation" false t2.E.complete;
  check_graph "resume with same budget = direct truncated run" direct2 t2;
  check_stats "same-budget stats" dstats2 tstats2;
  let t3, s3 = E.explore_with_stats ~resume_from:f2 cfg in
  check_graph "chained resume lands on the oracle" og t3;
  check_stats "chained stats" os s3;
  Sys.remove f1;
  Sys.remove f2

(* ------------------------ graceful interruption ---------------------- *)

let test_signal_stop_and_resume () =
  let cfg = cfg_m 3 in
  let og, os = E.explore_with_stats cfg in
  let snap = tmp_snap "sig" in
  Fun.protect ~finally:Snapshot.reset_stop (fun () ->
      Snapshot.request_stop ();
      Alcotest.(check bool) "flag visible" true (Snapshot.stop_requested ());
      let ig, istats = E.explore_with_stats ~snapshot_to:snap cfg in
      Alcotest.(check bool) "interrupted run truncated" false ig.E.complete;
      Alcotest.(check bool)
        "interrupted stats truncated"
        false istats.Checker_stats.complete;
      Alcotest.(check bool) "final snapshot flushed" true
        (Sys.file_exists snap);
      Alcotest.(check bool) "stopped before finishing" true
        (Array.length ig.E.states < Array.length og.E.states);
      (* the unexpanded frontier is present with empty transition lists *)
      Alcotest.(check int) "succs padded to states"
        (Array.length ig.E.states)
        (Array.length ig.E.succs));
  let rg, rs = E.explore_with_stats ~resume_from:snap cfg in
  check_graph "after signal stop" og rg;
  check_stats "after signal stop" os rs;
  Sys.remove snap

(* Also exercise the parallel explorer's boundary polling: a stop
   requested before the run halts it at its first boundary, and the
   resume completes bit-identically. *)
let test_signal_stop_parallel () =
  let cfg = cfg_m 3 in
  let og, os = E.explore_par ~domains:2 ~par_threshold:2 cfg in
  let snap = tmp_snap "sigpar" in
  Fun.protect ~finally:Snapshot.reset_stop (fun () ->
      Snapshot.request_stop ();
      let ig, _ =
        E.explore_par ~domains:2 ~par_threshold:2 ~snapshot_to:snap cfg
      in
      Alcotest.(check bool) "interrupted par run truncated" false
        ig.E.complete);
  let rg, rs = E.explore_par ~domains:2 ~par_threshold:2 ~resume_from:snap cfg in
  check_graph "par after signal stop" og rg;
  check_stats "par after signal stop" os rs;
  Sys.remove snap

(* --------------------- periodic snapshots, dispatch ------------------- *)

let test_periodic_snapshot_resume () =
  let cfg = cfg_m 3 in
  let plain = E.explore cfg in
  let snap = tmp_snap "periodic" in
  (* cadence 1: every generation boundary is flushed; the run completes *)
  let g1, s1 = E.explore_with_stats ~snapshot_every:1 ~snapshot_to:snap cfg in
  Alcotest.(check bool) "snapshotting run completes" true g1.E.complete;
  check_graph "snapshotting changes nothing" plain g1;
  Alcotest.(check bool) "periodic snapshot on disk" true
    (Sys.file_exists snap);
  (* the file holds some mid-run boundary; resuming it finishes the job *)
  let rg, rs = E.explore_with_stats ~resume_from:snap cfg in
  check_graph "resumed from periodic snapshot" g1 rg;
  check_stats "resumed from periodic snapshot" s1 rs;
  (* the plain explorer accepts the same options by delegation *)
  let g2 = E.explore ~resume_from:snap cfg in
  check_graph "plain explore resumes too" plain g2;
  Sys.remove snap

let test_cross_explorer_resume () =
  let cfg = cfg_m 3 in
  let og = E.explore cfg in
  let total = Array.length og.E.states in
  let cut = max 2 (total / 2) in
  let snap = tmp_snap "cross" in
  (* sequential snapshot resumed by the parallel explorer *)
  let _ = E.explore_with_stats ~max_states:cut ~snapshot_to:snap cfg in
  let pg, _ = E.explore_par ~domains:2 ~par_threshold:2 ~resume_from:snap cfg in
  check_graph "seq snapshot, par resume" og pg;
  (* and the other way around *)
  let _ =
    E.explore_par ~domains:2 ~par_threshold:2 ~max_states:cut
      ~snapshot_to:snap cfg
  in
  let sg, _ = E.explore_with_stats ~resume_from:snap cfg in
  check_graph "par snapshot, seq resume" og sg;
  Sys.remove snap

(* -------------------------- refusal paths ---------------------------- *)

let test_config_mismatch_refused () =
  let snap = tmp_snap "mismatch" in
  let _ = E.explore_with_stats ~snapshot_every:1 ~snapshot_to:snap (cfg_m 3) in
  (* different register count *)
  expect_error "m=5 vs m=3 snapshot"
    (function Snapshot.Config_mismatch _ -> true | _ -> false)
    (fun () -> E.explore_with_stats ~resume_from:snap (cfg_m 5));
  (* different reduction: the quotient is a different graph *)
  expect_error "canon vs full snapshot"
    (function Snapshot.Config_mismatch _ -> true | _ -> false)
    (fun () ->
      E.explore_with_stats ~reduction:Explore.Canon ~resume_from:snap
        (cfg_m 3));
  Sys.remove snap

let test_corrupt_resume_refused () =
  let snap = tmp_snap "corruptresume" in
  let _ = E.explore_with_stats ~snapshot_every:1 ~snapshot_to:snap (cfg_m 3) in
  let b = slurp snap in
  Bytes.set b
    (Bytes.length b - 1)
    (Char.chr (Char.code (Bytes.get b (Bytes.length b - 1)) lxor 0x55));
  rewrite snap b;
  expect_error "resume from damaged snapshot"
    (function Snapshot.Corrupt _ -> true | _ -> false)
    (fun () -> E.explore_with_stats ~resume_from:snap (cfg_m 3));
  Sys.remove snap

(* ------------------------- memory watermark --------------------------- *)

let test_memory_watermark_keeps_graph () =
  let cfg = cfg_m 3 in
  let og, os = E.explore_with_stats cfg in
  let snap = tmp_snap "watermark" in
  (* a 0 MB soft limit keeps the watermark permanently tripped: every
     generation is batch-split and compacted. The graph must not care. *)
  let wg, ws =
    E.explore_with_stats ~mem_soft_limit_mb:0 ~snapshot_to:snap cfg
  in
  check_graph "degraded run, identical graph" og wg;
  Alcotest.(check int) "same state count" os.Checker_stats.n_states
    ws.Checker_stats.n_states;
  Alcotest.(check int) "same transition count" os.Checker_stats.n_transitions
    ws.Checker_stats.n_transitions;
  Alcotest.(check bool) "pressure forced a snapshot" true
    (Sys.file_exists snap);
  (* the forced snapshot is itself resumable to the same graph *)
  let rg, _ = E.explore_with_stats ~resume_from:snap cfg in
  check_graph "resume from pressure-forced snapshot" og rg;
  Sys.remove snap

let suite =
  [
    Alcotest.test_case "envelope roundtrip" `Quick test_envelope_roundtrip;
    Alcotest.test_case "chunked appends roundtrip" `Quick
      test_append_roundtrip;
    Alcotest.test_case "damaged files rejected" `Quick test_damage_rejected;
    Alcotest.test_case "salvage matrix: envelope" `Quick
      test_salvage_matrix_envelope;
    Alcotest.test_case "salvage matrix: seq+par x Full+Canon" `Slow
      test_salvage_matrix_explorers;
    Alcotest.test_case "kill and resume: seq+par x Full+Canon" `Slow
      test_kill_and_resume;
    Alcotest.test_case "chained double resume" `Quick test_chained_resume;
    Alcotest.test_case "signal stop, flush, resume" `Quick
      test_signal_stop_and_resume;
    Alcotest.test_case "signal stop: parallel explorer" `Slow
      test_signal_stop_parallel;
    Alcotest.test_case "periodic snapshots while completing" `Quick
      test_periodic_snapshot_resume;
    Alcotest.test_case "cross-explorer resume" `Slow
      test_cross_explorer_resume;
    Alcotest.test_case "config mismatch refused" `Quick
      test_config_mismatch_refused;
    Alcotest.test_case "corrupt snapshot refused on resume" `Quick
      test_corrupt_resume_refused;
    Alcotest.test_case "memory watermark degrades, graph identical" `Slow
      test_memory_watermark_keeps_graph;
  ]
