(* The declarative sweep engine. Pinned here:

   - matrix expansion is deterministic and duplicate-free (dedup on the
     canonical Spec.ident; first occurrence wins; labels unique);
   - a 2x2 smoke sweep (mutex, m in {3,4}, full/canon) reaches the same
     verdicts as the equivalent direct `coordctl check` invocations —
     m = 3 passes (exit 0), m = 4 violates mutual exclusion (exit 1);
     scripts/serve_smoke.sh cross-checks the same matrix against the
     real CLI binary;
   - regression gates: expected violations pass their gates, and a
     seeded gate failure (expecting pass where a violation is known)
     actually fails the sweep;
   - re-running a sweep against the same verdict cache explores zero
     fresh states. *)

let parse_exn s =
  match Serve.Sweep.parse s with
  | Ok spec -> spec
  | Error e -> Alcotest.fail ("sweep spec did not parse: " ^ e)

let tmp_dir name =
  let d = Filename.temp_file ("coordsweep-" ^ name) ".d" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let smoke_2x2 =
  "name = smoke\n\
   kind = check\n\
   protocols = mutex\n\
   n = 2\n\
   m = 3, 4\n\
   reductions = full, canon\n\
   expect = pass\n\
   expect.mutex-n2-m4 = violation\n"

(* --------------------------- expansion -------------------------------- *)

let test_expand_deterministic_duplicate_free () =
  (* duplicated axis values collapse: the matrix below names 2x3x2 = 12
     raw combinations but only 4 distinct jobs *)
  let spec =
    parse_exn
      "name = dup\n\
       protocols = mutex, mutex\n\
       m = 3, 3, 4\n\
       reductions = full, canon\n"
  in
  let cells = Serve.Sweep.expand spec in
  Alcotest.(check int) "duplicates collapse" 4 (List.length cells);
  let labels = List.map (fun (c : Serve.Sweep.cell) -> c.label) cells in
  Alcotest.(check (list string)) "deterministic order, unique labels"
    [ "mutex-n2-m3-full"; "mutex-n2-m3-canon"; "mutex-n2-m4-full";
      "mutex-n2-m4-canon" ]
    labels;
  let idents =
    List.map (fun (c : Serve.Sweep.cell) -> Serve.Spec.ident c.job) cells
  in
  Alcotest.(check int) "idents unique"
    (List.length idents)
    (List.length (List.sort_uniq compare idents));
  (* expansion is a pure function of the spec *)
  Alcotest.(check bool) "same spec expands identically" true
    (Serve.Sweep.expand spec = cells);
  (* for kind=check the fuzz/hunt axes are not multiplied in *)
  let spec =
    parse_exn "name = s\nprotocols = mutex\nm = 2\nseeds = 1, 2, 3\n"
  in
  Alcotest.(check int) "check collapses the seed axis" 1
    (List.length (Serve.Sweep.expand spec));
  (* a fault axis IS a distinct cell even for an identical job spec *)
  let spec =
    parse_exn "name = f\nprotocols = mutex\nm = 2\nfaults = none, 42\n"
  in
  let cells = Serve.Sweep.expand spec in
  Alcotest.(check (list string)) "fault seed is part of the cell identity"
    [ "mutex-n2-m2-full"; "mutex-n2-m2-full-f42" ]
    (List.map (fun (c : Serve.Sweep.cell) -> c.label) cells)

let test_parse_rejects () =
  let bad =
    [
      ("no protocols", "name = x\nm = 3\n");
      ("unknown key", "protocols = mutex\nfrobnicate = 1\n");
      ("unknown protocol", "protocols = paxos\n");
      ("unknown verdict tag", "protocols = mutex\nexpect = maybe\n");
      ("malformed line", "protocols = mutex\nnot a kv line\n");
    ]
  in
  List.iter
    (fun (tag, s) ->
      match Serve.Sweep.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (tag ^ ": must not parse"))
    bad

(* ------------------- verdicts match coordctl check -------------------- *)

let test_smoke_sweep_matches_direct_check () =
  let report =
    Serve.Sweep.run ~state_dir:(tmp_dir "smoke") (parse_exn smoke_2x2)
  in
  let by_label l =
    List.find (fun (r : Serve.Sweep.row) -> r.label = l) report.rows
  in
  (* ground truth from the direct checker (pinned by test_amutex /
     experiment E2): odd m passes, even m violates mutual exclusion *)
  List.iter
    (fun (label, verdict, exit_code) ->
      let r = by_label label in
      Alcotest.(check string) (label ^ ": verdict") verdict r.verdict;
      Alcotest.(check int) (label ^ ": exit") exit_code r.exit_code;
      Alcotest.(check bool) (label ^ ": gate ok") true (r.gate = `Ok))
    [
      ("mutex-n2-m3-full", "pass", 0);
      ("mutex-n2-m3-canon", "pass", 0);
      ("mutex-n2-m4-full", "violation", 1);
      ("mutex-n2-m4-canon", "violation", 1);
    ];
  Alcotest.(check int) "no gate failures" 0 report.gates_failed;
  (* the expected violations count as violations, but with gates
     configured the sweep still exits 0 *)
  Alcotest.(check int) "violations counted" 2 report.violations;
  Alcotest.(check int) "gated sweep exits 0" 0 (Serve.Sweep.exit_code report);
  (* the canon cells explore strictly fewer states than full *)
  let full = (by_label "mutex-n2-m3-full").states in
  let canon = (by_label "mutex-n2-m3-canon").states in
  Alcotest.(check bool) "canon quotient is smaller" true (canon < full)

let test_ungated_sweep_exit () =
  (* no gates configured: a violation cell makes the sweep exit 1 *)
  let report =
    Serve.Sweep.run
      ~state_dir:(tmp_dir "ungated")
      (parse_exn "name = u\nprotocols = mutex\nm = 4\n")
  in
  Alcotest.(check int) "violation without a gate fails the sweep" 1
    (Serve.Sweep.exit_code report)

(* ------------------------- regression gates --------------------------- *)

let test_seeded_gate_failure_fails () =
  (* expect pass everywhere, but m = 4 is a known violation: the gate
     must fail and the sweep must exit non-zero *)
  let report =
    Serve.Sweep.run
      ~state_dir:(tmp_dir "gate")
      (parse_exn "name = g\nprotocols = mutex\nm = 3, 4\nexpect = pass\n")
  in
  Alcotest.(check int) "one gate failed" 1 report.gates_failed;
  Alcotest.(check int) "seeded gate failure fails the sweep" 1
    (Serve.Sweep.exit_code report);
  let bad =
    List.find
      (fun (r : Serve.Sweep.row) -> r.label = "mutex-n2-m4-full")
      report.rows
  in
  (match bad.gate with
  | `Fail msg ->
    Alcotest.(check bool) "gate message names the expectation" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "m=4 gate should have failed");
  let ok =
    List.find
      (fun (r : Serve.Sweep.row) -> r.label = "mutex-n2-m3-full")
      report.rows
  in
  Alcotest.(check bool) "m=3 gate still ok" true (ok.gate = `Ok)

(* --------------------------- cache re-run ----------------------------- *)

let test_rerun_served_from_cache () =
  let cache = Serve.Cache.create () in
  let spec = parse_exn smoke_2x2 in
  let first = Serve.Sweep.run ~cache ~state_dir:(tmp_dir "rerun-a") spec in
  Alcotest.(check bool) "first run explored" true (first.total_explored > 0);
  let second = Serve.Sweep.run ~cache ~state_dir:(tmp_dir "rerun-b") spec in
  Alcotest.(check int) "re-run explores zero fresh states" 0
    second.total_explored;
  Alcotest.(check int) "every cell served from the cache" second.cells
    second.cached_cells;
  Alcotest.(check int) "same total states" first.total_states
    second.total_states;
  List.iter2
    (fun (a : Serve.Sweep.row) (b : Serve.Sweep.row) ->
      Alcotest.(check string) (a.label ^ ": same verdict") a.verdict b.verdict;
      Alcotest.(check int) (a.label ^ ": same exit") a.exit_code b.exit_code;
      Alcotest.(check int) (a.label ^ ": same states") a.states b.states)
    first.rows second.rows;
  Alcotest.(check int) "cached re-run keeps its gates and exit 0" 0
    (Serve.Sweep.exit_code second)

let suite =
  [
    Alcotest.test_case "expansion: deterministic, duplicate-free" `Quick
      test_expand_deterministic_duplicate_free;
    Alcotest.test_case "parse: malformed specs rejected" `Quick
      test_parse_rejects;
    Alcotest.test_case "2x2 smoke sweep matches direct check verdicts" `Quick
      test_smoke_sweep_matches_direct_check;
    Alcotest.test_case "ungated sweep fails on a violation" `Quick
      test_ungated_sweep_exit;
    Alcotest.test_case "seeded gate failure fails the sweep" `Quick
      test_seeded_gate_failure_fails;
    Alcotest.test_case "re-run against the cache explores nothing" `Quick
      test_rerun_served_from_cache;
  ]
