open Anonmem

(* Fix_n must make the protocol blind to the actual process count. *)
module Pinned = Wrap.Fix_n (Coord.Consensus.P) (struct let n = 2 end)
module R = Runtime.Make (Pinned)
module R0 = Runtime.Make (Coord.Consensus.P)

let test_name_tagged () =
  Alcotest.(check bool) "name records the pin" true
    (Pinned.name = "anonymous-consensus-fig2[n:=2]")

let test_default_registers_pinned () =
  (* 2n-1 with n pinned to 2, whatever n is claimed *)
  Alcotest.(check int) "m for n=50" 3 (Pinned.default_registers ~n:50)

let test_behavior_matches_designed_instance () =
  (* a pinned run with 4 processes restricted to 2 participants behaves
     exactly like the genuine 2-process instance under the same schedule *)
  let script = [ 0; 1; 0; 0; 1; 1; 1; 0; 0; 0; 1; 1; 0; 1 ] in
  let wrapped =
    let rt =
      R.create
        (R.simple_config ~m:3 ~ids:[ 5; 9; 13; 17 ]
           ~inputs:[ 100; 200; 300; 400 ] ())
    in
    let _ = R.run rt (Schedule.script script) ~max_steps:100 in
    (R.Mem.contents (R.memory rt), R.status rt 0, R.status rt 1)
  in
  let genuine =
    let rt =
      R0.create (R0.simple_config ~m:3 ~ids:[ 5; 9 ] ~inputs:[ 100; 200 ] ())
    in
    let _ = R0.run rt (Schedule.script script) ~max_steps:100 in
    (R0.Mem.contents (R0.memory rt), R0.status rt 0, R0.status rt 1)
  in
  Alcotest.(check bool) "identical memory and statuses" true (wrapped = genuine)

let test_solo_decides_like_designed () =
  let rt =
    R.create
      (R.simple_config ~m:3 ~ids:[ 5; 9; 13; 17 ]
         ~inputs:[ 100; 200; 300; 400 ] ())
  in
  let _ = R.run rt (Schedule.solo 2) ~max_steps:200 in
  match R.status rt 2 with
  | Protocol.Decided v -> Alcotest.(check int) "solo decides its input" 300 v
  | _ -> Alcotest.fail "pinned protocol must still decide solo"

(* Fix_m: §3.2's property 1 made executable. Figure 1 for 3 registers run
   inside a memory of 5: correct whenever both processes use the SAME
   physical triple (the named discipline), broken when their namings pick
   different triples (no agreement which registers to ignore). *)
module Fig1_3 = Wrap.Fix_m (Coord.Amutex.P) (struct let m = 3 end)
module EFix = Check.Explore.Make (Fig1_3)

let fixm_verdicts namings =
  let cfg : EFix.config =
    { ids = [| 7; 13 |]; inputs = [| (); () |]; namings }
  in
  let f = EFix.to_flat (EFix.explore cfg) in
  ( Check.Mutex_props.mutual_exclusion f = None,
    Check.Mutex_props.deadlock_freedom f = None )

let test_fix_m_aligned_correct () =
  List.iter
    (fun namings ->
      let me, df = fixm_verdicts namings in
      Alcotest.(check bool) "ME with agreed window" true me;
      Alcotest.(check bool) "DF with agreed window" true df)
    [
      [| Naming.identity 5; Naming.identity 5 |];
      [| Naming.of_array [| 2; 3; 4; 0; 1 |];
         Naming.of_array [| 2; 3; 4; 1; 0 |] |];
    ]

let test_fix_m_misaligned_broken () =
  (* one-register overlap: both can assemble an all-mine view -> ME falls *)
  let me, _ =
    fixm_verdicts [| Naming.identity 5; Naming.of_array [| 2; 3; 4; 0; 1 |] |]
  in
  Alcotest.(check bool) "ME broken with overlap {2}" true (not me);
  (* two-register overlap: they block each other forever -> DF falls *)
  let me2, df2 =
    fixm_verdicts [| Naming.identity 5; Naming.of_array [| 1; 2; 3; 0; 4 |] |]
  in
  Alcotest.(check bool) "ME survives overlap {1,2}" true me2;
  Alcotest.(check bool) "DF broken with overlap {1,2}" true (not df2);
  (* disjoint windows: two independent "solo" runs -> ME falls trivially *)
  let me3, _ =
    fixm_verdicts [| Naming.identity 5; Naming.of_array [| 3; 4; 0; 1; 2 |] |]
  in
  Alcotest.(check bool) "ME broken with disjoint windows" true (not me3)

let test_fix_m_validates () =
  let module R = Runtime.Make (Fig1_3) in
  Alcotest.check_raises "too few physical registers"
    (Invalid_argument "Wrap.Fix_m: fewer physical registers than the pinned m")
    (fun () ->
      ignore (R.create (R.simple_config ~m:2 ~ids:[ 1; 2 ] ~inputs:[ (); () ] ())))

let suite =
  [
    Alcotest.test_case "name tagged" `Quick test_name_tagged;
    Alcotest.test_case "Fix_m: aligned windows stay correct" `Slow
      test_fix_m_aligned_correct;
    Alcotest.test_case "Fix_m: misaligned windows break (property 1)" `Slow
      test_fix_m_misaligned_broken;
    Alcotest.test_case "Fix_m: validates register count" `Quick
      test_fix_m_validates;
    Alcotest.test_case "default registers pinned" `Quick
      test_default_registers_pinned;
    Alcotest.test_case "behavior matches designed instance" `Quick
      test_behavior_matches_designed_instance;
    Alcotest.test_case "solo decides beyond design bound" `Quick
      test_solo_decides_like_designed;
  ]
